// Tests for HTTP message framing, chunked transfer coding, and the buffered
// connection over the in-memory transport.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "http/chunked_coding.hpp"
#include "http/connection.hpp"
#include "http/http_message.hpp"
#include "net/inmemory.hpp"

namespace bsoap::http {
namespace {

TEST(HttpMessage, SerializeRequestHead) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/svc";
  request.headers.push_back(Header{"Host", "localhost"});
  request.headers.push_back(Header{"SOAPAction", "\"op\""});
  EXPECT_EQ(serialize_request_head(request),
            "POST /svc HTTP/1.1\r\n"
            "Host: localhost\r\n"
            "SOAPAction: \"op\"\r\n"
            "\r\n");
}

TEST(HttpMessage, ParseRequestHead) {
  const auto request = parse_request_head(
      "POST /x HTTP/1.0\r\nContent-Length: 5\r\nA:  b \r\n\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request.value().method, "POST");
  EXPECT_EQ(request.value().target, "/x");
  EXPECT_EQ(request.value().version, "HTTP/1.0");
  ASSERT_NE(request.value().find("content-length"), nullptr);  // case-insens.
  EXPECT_EQ(request.value().find("Content-Length")->value, "5");
  EXPECT_EQ(request.value().find("a")->value, "b");
}

TEST(HttpMessage, ParseRequestErrors) {
  EXPECT_FALSE(parse_request_head("GARBAGE\r\n\r\n").ok());
  EXPECT_FALSE(parse_request_head("GET /x HTTP/2.0\r\n\r\n").ok());
  EXPECT_FALSE(parse_request_head("GET /x HTTP/1.1\r\nno-colon\r\n\r\n").ok());
}

TEST(HttpMessage, ParseResponseHead) {
  const auto response =
      parse_response_head("HTTP/1.1 404 Not Found\r\nX: 1\r\n\r\n");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 404);
  EXPECT_EQ(response.value().reason, "Not Found");
}

TEST(ChunkedCoding, EncodeProducesValidFraming) {
  std::vector<std::string> scratch;
  const std::string a = "hello";
  const std::string b(300, 'x');
  const net::ConstSlice body[] = {net::ConstSlice{a.data(), a.size()},
                                  net::ConstSlice{b.data(), b.size()}};
  std::string wire;
  for (const auto& s : encode_chunked(body, &scratch)) {
    wire.append(s.data, s.len);
  }
  EXPECT_EQ(wire, "5\r\nhello\r\n12c\r\n" + b + "\r\n0\r\n\r\n");
}

TEST(ChunkedCoding, DecoderHandlesSplitFeeds) {
  const std::string wire = "5\r\nhello\r\n3\r\nabc\r\n0\r\n\r\nLEFTOVER";
  // Feed one byte at a time.
  ChunkedDecoder decoder;
  std::string out;
  std::size_t pos = 0;
  while (!decoder.done()) {
    std::size_t consumed = 0;
    ASSERT_TRUE(decoder
                    .feed(std::string_view(wire).substr(pos, 1), &out,
                          &consumed)
                    .ok());
    pos += consumed;
  }
  EXPECT_EQ(out, "helloabc");
  EXPECT_EQ(wire.substr(pos), "LEFTOVER");
}

TEST(ChunkedCoding, DecoderExtensionsAndHex) {
  ChunkedDecoder decoder;
  std::string out;
  std::size_t consumed = 0;
  const std::string wire = "A;ext=1\r\n0123456789\r\n0\r\n\r\n";
  ASSERT_TRUE(decoder.feed(wire, &out, &consumed).ok());
  EXPECT_TRUE(decoder.done());
  EXPECT_EQ(out, "0123456789");
}

TEST(ChunkedCoding, DecoderRejectsGarbage) {
  ChunkedDecoder decoder;
  std::string out;
  std::size_t consumed = 0;
  EXPECT_FALSE(decoder.feed("zz\r\n", &out, &consumed).ok());
}

TEST(ChunkedCoding, RandomRoundTrip) {
  Rng rng(31337);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::string> pieces;
    const std::size_t n = 1 + rng.next_below(6);
    std::string expected;
    for (std::size_t i = 0; i < n; ++i) {
      std::string piece;
      const std::size_t len = rng.next_below(200);
      for (std::size_t k = 0; k < len; ++k) {
        piece += static_cast<char>(rng.next_below(256));
      }
      expected += piece;
      pieces.push_back(std::move(piece));
    }
    std::vector<net::ConstSlice> body;
    for (const std::string& p : pieces) {
      body.push_back(net::ConstSlice{p.data(), p.size()});
    }
    std::vector<std::string> scratch;
    std::string wire;
    for (const auto& s : encode_chunked(body, &scratch)) {
      wire.append(s.data, s.len);
    }
    ChunkedDecoder decoder;
    std::string out;
    std::size_t pos = 0;
    while (!decoder.done() && pos < wire.size()) {
      const std::size_t step = 1 + rng.next_below(64);
      std::size_t consumed = 0;
      ASSERT_TRUE(decoder
                      .feed(std::string_view(wire).substr(pos, step), &out,
                            &consumed)
                      .ok());
      pos += consumed;
    }
    EXPECT_TRUE(decoder.done());
    EXPECT_EQ(out, expected);
  }
}

TEST(HttpConnection, RequestResponseContentLength) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  HttpConnection client(*client_t);
  HttpConnection server(*server_t);

  std::thread server_thread([&] {
    Result<HttpRequest> request = server.read_request();
    ASSERT_TRUE(request.ok());
    EXPECT_EQ(request.value().body, "PAYLOAD");
    HttpResponse response;
    ASSERT_TRUE(server.send_response(std::move(response), "RESULT").ok());
  });

  HttpRequest head;
  head.target = "/svc";
  const std::string body_text = "PAYLOAD";
  const net::ConstSlice body[] = {
      net::ConstSlice{body_text.data(), body_text.size()}};
  ASSERT_TRUE(client.send_request(std::move(head), body).ok());
  Result<HttpResponse> response = client.read_response();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "RESULT");
  server_thread.join();
}

TEST(HttpConnection, ChunkedRequestBody) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  HttpConnection client(*client_t);
  HttpConnection server(*server_t);

  std::thread server_thread([&] {
    Result<HttpRequest> request = server.read_request();
    ASSERT_TRUE(request.ok());
    EXPECT_EQ(request.value().body, "part1part2part3");
    ASSERT_NE(request.value().find("Transfer-Encoding"), nullptr);
  });

  HttpRequest head;
  const std::string p1 = "part1", p2 = "part2", p3 = "part3";
  const net::ConstSlice body[] = {net::ConstSlice{p1.data(), p1.size()},
                                  net::ConstSlice{p2.data(), p2.size()},
                                  net::ConstSlice{p3.data(), p3.size()}};
  ASSERT_TRUE(
      client.send_request(std::move(head), body, ChunkedFramer{}).ok());
  server_thread.join();
}

TEST(HttpConnection, GzipRequestBodyTransparentlyDecoded) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  HttpConnection client(*client_t);
  HttpConnection server(*server_t);

  std::string payload;
  for (int i = 0; i < 500; ++i) payload += "<item>1.25</item>";

  std::thread server_thread([&] {
    Result<HttpRequest> request = server.read_request();
    ASSERT_TRUE(request.ok());
    // The wire carried gzip; the reader hands back plain XML.
    ASSERT_NE(request.value().find("Content-Encoding"), nullptr);
    EXPECT_EQ(request.value().body, payload);
  });

  HttpRequest head;
  head.target = "/compressed";
  ASSERT_TRUE(
      client.send_request(std::move(head), payload, ContentCoding::kGzip)
          .ok());
  server_thread.join();
}

TEST(HttpConnection, KeepAlivePipelinedRequests) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  HttpConnection client(*client_t);
  HttpConnection server(*server_t);

  for (int i = 0; i < 5; ++i) {
    HttpRequest head;
    const std::string body_text = "n=" + std::to_string(i);
    const net::ConstSlice body[] = {
        net::ConstSlice{body_text.data(), body_text.size()}};
    ASSERT_TRUE(client.send_request(std::move(head), body).ok());
  }
  for (int i = 0; i < 5; ++i) {
    Result<HttpRequest> request = server.read_request();
    ASSERT_TRUE(request.ok());
    EXPECT_EQ(request.value().body, "n=" + std::to_string(i));
  }
  client_t->shutdown_send();
  Result<HttpRequest> closed = server.read_request();
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.error().code, ErrorCode::kClosed);
}

TEST(HttpConnection, ResponseWithoutFramingReadsToClose) {
  // HTTP/1.0 style: no Content-Length, body ends when the peer closes.
  auto [client_t, server_t] = net::make_inmemory_transports();
  HttpConnection client(*client_t);

  std::thread server_thread([t = std::move(server_t)]() mutable {
    const std::string raw =
        "HTTP/1.0 200 OK\r\nServer: legacy\r\n\r\nUNFRAMED BODY";
    ASSERT_TRUE(t->send(raw).ok());
    t->shutdown_send();
  });

  Result<HttpResponse> response = client.read_response();
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().version, "HTTP/1.0");
  EXPECT_EQ(response.value().body, "UNFRAMED BODY");
  server_thread.join();
}

TEST(HttpConnection, CorruptGzipBodyIsAnError) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  HttpConnection client(*client_t);
  HttpConnection server(*server_t);

  std::thread server_thread([&] {
    Result<HttpRequest> request = server.read_request();
    EXPECT_FALSE(request.ok());  // gzip decode fails
  });

  HttpRequest head;
  head.headers.push_back(Header{"Content-Encoding", "gzip"});
  const std::string junk = "definitely not gzip";
  const net::ConstSlice body[] = {net::ConstSlice{junk.data(), junk.size()}};
  ASSERT_TRUE(client.send_request(std::move(head), body).ok());
  server_thread.join();
}

}  // namespace
}  // namespace bsoap::http
