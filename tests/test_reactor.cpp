// Reactor engine tests: the epoll-driven connection core must be
// indistinguishable from the blocking engine on the wire — byte-for-byte
// identical responses over keep-alive sequences, the same timeout and
// overload answers — while scaling to connection counts the blocking pool
// cannot hold (a thousand mostly-idle keep-alives over a handful of
// workers).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "buffer/sinks.hpp"
#include "core/client.hpp"
#include "http/http_message.hpp"
#include "net/tcp.hpp"
#include "server/server_runtime.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/soap_server.hpp"

namespace bsoap::server {
namespace {

using namespace std::chrono_literals;
using core::BsoapClient;
using soap::RpcCall;
using soap::Value;

template <typename Pred>
bool wait_for(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

Result<Value> sum_handler(const RpcCall& call) {
  if (call.method != "sum") return Error{ErrorCode::kNotFound, "no method"};
  double total = 0;
  for (const double v : call.params[0].value.doubles()) total += v;
  return Value::from_double(total);
}

RpcCall make_sum_call(std::vector<double> values) {
  RpcCall call;
  call.method = "sum";
  call.service_namespace = "urn:calc";
  call.params.push_back(
      soap::Param{"data", Value::from_double_array(std::move(values))});
  return call;
}

/// Raw wire bytes for one POST with the given SOAP body.
std::string raw_request(const std::string& body) {
  http::HttpRequest request;
  request.headers.push_back(
      http::Header{"Content-Type", "text/xml; charset=utf-8"});
  request.headers.push_back(
      http::Header{"Content-Length", std::to_string(body.size())});
  return http::serialize_request_head(request) + body;
}

std::string envelope_for(const RpcCall& call) {
  buffer::StringSink sink;
  soap::write_rpc_envelope(sink, call);
  return sink.str();
}

std::string read_until_eof(net::Transport& transport) {
  std::string all;
  char buf[16 * 1024];
  for (;;) {
    Result<std::size_t> got = transport.recv(buf, sizeof(buf));
    if (!got.ok() || got.value() == 0) break;
    all.append(buf, got.value());
  }
  return all;
}

struct WireRun {
  std::string bytes;
  ServerStats stats;
};

/// Plays `wire` into a fresh single-worker server of the given engine over
/// one keep-alive connection and returns everything the server answered.
WireRun run_wire(IoModel model, const std::string& wire) {
  ServerRuntimeOptions options;
  options.workers = 1;  // one pipeline: deterministic match-kind counters
  options.io_model = model;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  EXPECT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(server.value()->port());
  EXPECT_TRUE(transport.ok());
  EXPECT_TRUE(transport.value()->send(wire).ok());
  transport.value()->shutdown_send();

  WireRun run;
  run.bytes = read_until_eof(*transport.value());
  // Let the server observe our EOF and retire the connection before
  // snapshotting, so counters are final.
  EXPECT_TRUE(wait_for([&] { return server.value()->stats().active == 0; }));
  run.stats = server.value()->stats();
  server.value()->stop();
  return run;
}

// The acceptance bar for the whole refactor: a pipelined keep-alive
// sequence mixing differential fast paths (first-time, content match,
// perfect structural on a value change, partial on a shape change), a SOAP
// parse failure (400 + fault, connection stays usable), and a handler
// fault (500, stays usable) must come back byte-identical from both
// engines, with identical request/fault/match-kind accounting.
TEST(Reactor, ByteIdenticalToBlockingOverKeepAliveSequence) {
  std::string wire;
  wire += raw_request(envelope_for(make_sum_call({1.5, 2.5, 3.0})));
  wire += raw_request(envelope_for(make_sum_call({1.5, 2.5, 3.0})));
  wire += raw_request(envelope_for(make_sum_call({4.0, 5.0, 6.0})));
  wire += raw_request("<not-even-soap>");
  wire += raw_request(envelope_for(make_sum_call({7.0, 8.0})));
  RpcCall unknown;
  unknown.method = "launch";
  unknown.service_namespace = "urn:calc";
  unknown.params.push_back(
      soap::Param{"data", Value::from_double_array({1.0})});
  wire += raw_request(envelope_for(unknown));
  wire += raw_request(envelope_for(make_sum_call({9.0, 10.0, 11.0})));

  const WireRun blocking = run_wire(IoModel::kBlocking, wire);
  const WireRun reactor = run_wire(IoModel::kReactor, wire);

  EXPECT_FALSE(blocking.bytes.empty());
  EXPECT_EQ(blocking.bytes, reactor.bytes);

  EXPECT_EQ(blocking.stats.requests, reactor.stats.requests);
  EXPECT_EQ(blocking.stats.faults, reactor.stats.faults);
  EXPECT_EQ(blocking.stats.bad_requests, reactor.stats.bad_requests);
  EXPECT_EQ(blocking.stats.response_first_time,
            reactor.stats.response_first_time);
  EXPECT_EQ(blocking.stats.response_content_match,
            reactor.stats.response_content_match);
  EXPECT_EQ(blocking.stats.response_perfect_match,
            reactor.stats.response_perfect_match);
  EXPECT_EQ(blocking.stats.response_partial_match,
            reactor.stats.response_partial_match);
  EXPECT_EQ(reactor.stats.requests, 5u);
  EXPECT_EQ(reactor.stats.faults, 2u);  // SOAP parse 400 + handler 500
  EXPECT_EQ(reactor.stats.bad_requests, 1u);

  // Small responses on a drained loopback socket never hit EAGAIN: the
  // worker's direct writes must land without copying a single byte for the
  // EPOLLOUT drain path.
  EXPECT_EQ(reactor.stats.write_copied_bytes, 0u);
}

// The EAGAIN tail path in isolation: an inner transport that accepts a
// fixed byte budget per gathered write forces DirectSliceTransport to park
// the remainder. Only the unsent suffix may be copied, the copy must
// reproduce the original byte stream exactly, and a clean send copies
// nothing.
TEST(Reactor, DirectSliceTransportCopiesOnlyTheEagainTail) {
  class ThrottledInner final : public net::Transport {
   public:
    using net::Transport::send;
    explicit ThrottledInner(std::size_t budget) : budget_(budget) {}
    Status send(const char* data, std::size_t n) override {
      accepted_.append(data, n);
      return Status{};
    }
    Status send_slices(std::span<const net::ConstSlice> slices) override {
      for (const net::ConstSlice& s : slices) accepted_.append(s.data, s.len);
      return Status{};
    }
    Result<net::IoResult> send_slices_some(
        std::span<const net::ConstSlice> slices) override {
      std::size_t total = 0;
      for (const net::ConstSlice& s : slices) {
        const std::size_t take = std::min(s.len, budget_);
        accepted_.append(s.data, take);
        total += take;
        budget_ -= take;
        if (take < s.len) return net::IoResult{total, true};
      }
      return net::IoResult{total, false};
    }
    Result<std::size_t> recv(char*, std::size_t) override {
      return Error{ErrorCode::kUnsupported, "write-only"};
    }
    void shutdown_send() override {}
    std::string accepted_;
    std::size_t budget_;
  };

  const std::string part1 = "<xml>differential ";
  const std::string part2 = "serialization ";
  const std::string part3 = "tail</xml>";
  const std::vector<net::ConstSlice> slices{
      net::ConstSlice{part1.data(), part1.size()},
      net::ConstSlice{part2.data(), part2.size()},
      net::ConstSlice{part3.data(), part3.size()}};
  const std::string all = part1 + part2 + part3;

  // Budget cuts mid-slice-2: the accepted prefix plus the parked tail must
  // re-assemble the exact wire bytes, and only the tail was copied.
  ThrottledInner inner(part1.size() + 4);
  DirectSliceTransport direct(inner);
  ASSERT_TRUE(direct.send_slices(slices).ok());
  EXPECT_EQ(inner.accepted_, all.substr(0, part1.size() + 4));
  EXPECT_EQ(direct.copied_bytes(), all.size() - part1.size() - 4);
  // A follow-up write while a tail is parked must append to the tail (the
  // socket is not writable; ordering would invert otherwise).
  ASSERT_TRUE(direct.send("-trailer").ok());
  EXPECT_EQ(inner.accepted_ + direct.take_tail(), all + "-trailer");
  EXPECT_FALSE(direct.write_error());

  // A clean send through an unthrottled inner copies nothing.
  ThrottledInner roomy(1 << 20);
  DirectSliceTransport clean(roomy);
  ASSERT_TRUE(clean.send_slices(slices).ok());
  EXPECT_EQ(roomy.accepted_, all);
  EXPECT_EQ(clean.copied_bytes(), 0u);
}

// Multi-megabyte responses against a deliberately slow reader: the direct
// write path will stall on socket buffers and ride the EPOLLOUT tail, and
// the reassembled stream must still be byte-identical to the blocking
// engine's.
TEST(Reactor, LargeResponsesByteIdenticalUnderSlowReader) {
  soap::RpcHandler fill_handler = [](const RpcCall& call) -> Result<Value> {
    if (call.method != "fill") return Error{ErrorCode::kNotFound, "no method"};
    const std::size_t n =
        static_cast<std::size_t>(call.params[0].value.doubles()[0]);
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = 0.25 * static_cast<double>(i);
    return Value::from_double_array(std::move(values));
  };
  RpcCall fill;
  fill.method = "fill";
  fill.service_namespace = "urn:calc";
  fill.params.push_back(
      soap::Param{"n", Value::from_double_array({60000.0})});
  const std::string wire = raw_request(envelope_for(fill));

  auto run_slow = [&](IoModel model) {
    ServerRuntimeOptions options;
    options.workers = 1;
    options.io_model = model;
    Result<std::unique_ptr<ServerRuntime>> server =
        ServerRuntime::start(fill_handler, options);
    EXPECT_TRUE(server.ok());
    Result<std::unique_ptr<net::Transport>> transport =
        net::tcp_connect(server.value()->port());
    EXPECT_TRUE(transport.ok());
    EXPECT_TRUE(transport.value()->send(wire).ok());
    transport.value()->shutdown_send();
    // Drain in small sips so the server-side socket buffer fills and the
    // worker's nonblocking write actually stalls.
    std::string all;
    char buf[8 * 1024];
    for (;;) {
      Result<std::size_t> got = transport.value()->recv(buf, sizeof(buf));
      if (!got.ok() || got.value() == 0) break;
      all.append(buf, got.value());
      std::this_thread::sleep_for(1ms);
    }
    EXPECT_TRUE(wait_for([&] { return server.value()->stats().active == 0; }));
    server.value()->stop();
    return all;
  };

  const std::string blocking = run_slow(IoModel::kBlocking);
  const std::string reactor = run_slow(IoModel::kReactor);
  EXPECT_GT(blocking.size(), 1024u * 1024u);  // genuinely larger than buffers
  EXPECT_EQ(blocking, reactor);
}

TEST(Reactor, UnparseableHttpGets400AndCloseOnBothEngines) {
  const std::string wire = "BLARGH money HTTP/9.9\r\n\r\n";
  const WireRun blocking = run_wire(IoModel::kBlocking, wire);
  const WireRun reactor = run_wire(IoModel::kReactor, wire);
  EXPECT_FALSE(blocking.bytes.empty());
  EXPECT_EQ(blocking.bytes, reactor.bytes);
  EXPECT_NE(blocking.bytes.find("400 Bad Request"), std::string::npos);
  EXPECT_EQ(reactor.stats.bad_requests, 1u);
}

TEST(Reactor, IdleConnectionsCloseOnTheIdleTimeout) {
  ServerRuntimeOptions options;
  options.io_model = IoModel::kReactor;
  options.idle_timeout = 100ms;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(transport.ok());
  // Never send a byte: the server should hang up, without an answer, once
  // the idle deadline passes.
  const std::string answer = read_until_eof(*transport.value());
  EXPECT_EQ(answer, "");
  ASSERT_TRUE(wait_for([&] { return server.value()->stats().idle_closed == 1; }));
  EXPECT_EQ(server.value()->stats().active, 0u);
  server.value()->stop();
}

TEST(Reactor, SlowLorisPartialHeaderHitsTheReadTimeout) {
  ServerRuntimeOptions options;
  options.io_model = IoModel::kReactor;
  options.read_timeout = 150ms;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(transport.ok());
  // A few header bytes, then silence: the read deadline (not the longer
  // idle one) must reap the connection.
  ASSERT_TRUE(transport.value()->send("POST / HT").ok());
  const std::string answer = read_until_eof(*transport.value());
  EXPECT_EQ(answer, "");
  ASSERT_TRUE(
      wait_for([&] { return server.value()->stats().read_timeouts == 1; }));
  ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.idle_closed, 0u);
  EXPECT_GE(stats.partial_reads, 1u);  // the header fragment left a partial
  server.value()->stop();
}

TEST(Reactor, DrainFinishesInFlightRequests) {
  std::atomic<bool> release{false};
  std::atomic<int> entered{0};
  soap::RpcHandler slow_handler = [&](const RpcCall& call) -> Result<Value> {
    entered.fetch_add(1);
    while (!release.load()) std::this_thread::sleep_for(1ms);
    return sum_handler(call);
  };

  ServerRuntimeOptions options;
  options.io_model = IoModel::kReactor;
  options.workers = 1;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(slow_handler, options);
  ASSERT_TRUE(server.ok());

  Result<Value> answer = Error{ErrorCode::kInternal, "not answered"};
  std::thread client_thread([&] {
    Result<std::unique_ptr<net::Transport>> transport =
        net::tcp_connect(server.value()->port());
    ASSERT_TRUE(transport.ok());
    BsoapClient client(*transport.value());
    answer = client.invoke(make_sum_call({20.0, 22.0}));
  });
  ASSERT_TRUE(wait_for([&] { return entered.load() == 1; }));

  // Stop while the request is dispatched: drain must wait for the worker,
  // deliver the response, then close.
  std::thread stopper([&] { server.value()->stop(); });
  std::this_thread::sleep_for(20ms);
  release.store(true);
  stopper.join();
  client_thread.join();
  ASSERT_TRUE(answer.ok()) << answer.error().to_string();
  EXPECT_EQ(answer.value().as_double(), 42.0);
  EXPECT_EQ(server.value()->stats().requests, 1u);
}

TEST(Reactor, OverloadAnswers503IdenticalToBlocking) {
  // max_connections = 0: every connection is refused at admission, on both
  // engines, with the same rendered 503.
  std::string blocking_bytes;
  std::string reactor_bytes;
  for (const IoModel model : {IoModel::kBlocking, IoModel::kReactor}) {
    ServerRuntimeOptions options;
    options.io_model = model;
    options.max_connections = 0;
    Result<std::unique_ptr<ServerRuntime>> server =
        ServerRuntime::start(sum_handler, options);
    ASSERT_TRUE(server.ok());
    Result<std::unique_ptr<net::Transport>> transport =
        net::tcp_connect(server.value()->port());
    ASSERT_TRUE(transport.ok());
    const std::string bytes = read_until_eof(*transport.value());
    (model == IoModel::kBlocking ? blocking_bytes : reactor_bytes) = bytes;
    ASSERT_TRUE(wait_for([&] { return server.value()->stats().rejected == 1; }));
    server.value()->stop();
  }
  EXPECT_FALSE(blocking_bytes.empty());
  EXPECT_EQ(blocking_bytes, reactor_bytes);
  EXPECT_NE(reactor_bytes.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(reactor_bytes.find("Connection: close"), std::string::npos);
}

TEST(Reactor, HoldsAThousandIdleConnectionsWhileServingActiveOnes) {
  ServerRuntimeOptions options;
  options.io_model = IoModel::kReactor;
  options.workers = 2;
  options.max_connections = 1100;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  // A fleet the blocking pool could never hold: 1000 keep-alive connections
  // that connect and go quiet.
  std::vector<std::unique_ptr<net::Transport>> idle;
  idle.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    Result<std::unique_ptr<net::Transport>> transport =
        net::tcp_connect(server.value()->port());
    ASSERT_TRUE(transport.ok()) << "connection " << i;
    idle.push_back(std::move(transport.value()));
  }
  ASSERT_TRUE(wait_for([&] { return server.value()->stats().accepted >= 1000; }));

  // A handful of active clients must be served promptly through the fleet.
  // Their transports stay open so the active gauge below is exact.
  std::vector<std::unique_ptr<net::Transport>> active;
  for (int c = 0; c < 5; ++c) {
    Result<std::unique_ptr<net::Transport>> transport =
        net::tcp_connect(server.value()->port());
    ASSERT_TRUE(transport.ok());
    active.push_back(std::move(transport.value()));
    BsoapClient client(*active.back());
    for (int i = 0; i < 3; ++i) {
      Result<Value> result = client.invoke(make_sum_call({1.0 * c, 2.0 * i}));
      ASSERT_TRUE(result.ok()) << result.error().to_string();
      EXPECT_EQ(result.value().as_double(), 1.0 * c + 2.0 * i);
    }
  }

  ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.requests, 15u);
  EXPECT_EQ(stats.active, 1005u);
  EXPECT_GE(stats.conns_idle, 1000u);
  EXPECT_GE(stats.epoll_wakeups, 1u);
  server.value()->stop();
}

TEST(Reactor, DispatchStressAcrossEightWorkers) {
  ServerRuntimeOptions options;
  options.io_model = IoModel::kReactor;
  options.workers = 8;
  options.shared_cache = true;  // cross-worker template path under stress
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Result<std::unique_ptr<net::Transport>> transport =
          net::tcp_connect(server.value()->port());
      if (!transport.ok()) return;
      BsoapClient client(*transport.value());
      for (int i = 0; i < kPerThread; ++i) {
        Result<Value> result =
            client.invoke(make_sum_call({1.0 * t, 1.0 * i, 0.5}));
        if (result.ok() &&
            result.value().as_double() == 1.0 * t + 1.0 * i + 0.5) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();

  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
  ASSERT_TRUE(wait_for([&] {
    return server.value()->stats().requests ==
           static_cast<std::uint64_t>(kThreads * kPerThread);
  }));
  const ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.faults, 0u);
  EXPECT_EQ(stats.responses_total(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  server.value()->stop();
}

}  // namespace
}  // namespace bsoap::server
