// Diff-wire protocol tests: frame encode/decode round-trips, ReplicaStore
// validation and NACK semantics, byte-identical reconstruction of pipeline
// patch sends (parsed back through http::RequestParser at every byte
// boundary), end-to-end client/server negotiation on both connection
// engines, NACK -> full-send -> re-pin recovery, fault injection with zero
// failed requests, and an 8-worker shared-cache stress (TSan-covered).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/client.hpp"
#include "core/send_pipeline.hpp"
#include "diffwire/replica_store.hpp"
#include "diffwire/wire_format.hpp"
#include "http/request_parser.hpp"
#include "net/fault_injection.hpp"
#include "net/tcp.hpp"
#include "server/reactor.hpp"
#include "server/server_runtime.hpp"
#include "soap/workload.hpp"

namespace bsoap::diffwire {
namespace {

using namespace std::chrono_literals;
using core::BsoapClient;
using core::BsoapClientConfig;
using soap::RpcCall;
using soap::Value;

template <typename Pred>
bool wait_for(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

/// Stuffed numeric fields: every double rewrite stays in place, so repeat
/// sends are perfect structural matches — the patch-eligible steady state.
core::TemplateConfig stuffed_config() {
  core::TemplateConfig cfg;
  cfg.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
  cfg.stuffing.stuff_on_expand = true;
  return cfg;
}

Result<Value> sum_handler(const RpcCall& call) {
  if (call.method != "sendData") {
    return Error{ErrorCode::kNotFound, "no method"};
  }
  double total = 0;
  for (const double v : call.params[0].value.doubles()) total += v;
  return Value::from_double(total);
}

double sum_of(const std::vector<double>& values) {
  double total = 0;
  for (const double v : values) total += v;
  return total;
}

/// Feeds the captured wire bytes through the incremental request parser one
/// byte at a time — a patch frame must survive any packetization.
http::HttpRequest parse_bytewise(const std::string& wire) {
  http::RequestParser parser;
  for (const char c : wire) {
    const Status fed = parser.feed(&c, 1);
    EXPECT_TRUE(fed.ok()) << fed.error().to_string();
  }
  EXPECT_TRUE(parser.done());
  return parser.take();
}

/// Sends `call` through `pipeline` into a capture buffer; returns the wire
/// bytes and the report.
std::pair<std::string, core::SendReport> capture_send(
    core::SendPipeline& pipeline, const RpcCall& call) {
  server::CaptureTransport capture;
  core::SendDestination dest;
  dest.transport = &capture;
  Result<core::SendReport> report = pipeline.send(call, dest);
  EXPECT_TRUE(report.ok()) << report.error().to_string();
  return {capture.take(), report.value()};
}

// --- wire format -----------------------------------------------------------

TEST(DiffWireFormat, TemplateIdHexRoundTrip) {
  EXPECT_EQ(format_template_id(0), "0000000000000000");
  EXPECT_EQ(format_template_id(0xdeadbeef01020304ull), "deadbeef01020304");
  std::uint64_t id = 0;
  EXPECT_TRUE(parse_template_id("deadbeef01020304", &id));
  EXPECT_EQ(id, 0xdeadbeef01020304ull);
  EXPECT_FALSE(parse_template_id("deadbeef0102030", &id));    // short
  EXPECT_FALSE(parse_template_id("deadbeef010203045", &id));  // long
  EXPECT_FALSE(parse_template_id("deadbeef0102030g", &id));   // non-hex
}

TEST(DiffWireFormat, PatchFrameRoundTrip) {
  PatchHeader header;
  header.template_id = 0x1122334455667788ull;
  header.epoch = 7;
  header.run_count = 2;
  header.body_len = 100;
  header.checksum = fnv1a("the reconstructed body");

  std::string frame;
  append_patch_header(frame, header);
  append_run_header(frame, 10, 3);
  frame += "abc";
  append_run_header(frame, 90, 5);
  frame += "defgh";

  Result<PatchFrame> decoded = decode_patch(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value().header.template_id, header.template_id);
  EXPECT_EQ(decoded.value().header.epoch, 7u);
  EXPECT_EQ(decoded.value().header.body_len, 100u);
  EXPECT_EQ(decoded.value().header.checksum, header.checksum);
  EXPECT_FALSE(decoded.value().header.replay());
  ASSERT_EQ(decoded.value().runs.size(), 2u);
  EXPECT_EQ(decoded.value().runs[0].offset, 10u);
  EXPECT_EQ(std::string(decoded.value().runs[0].data, 3), "abc");
  EXPECT_EQ(decoded.value().runs[1].offset, 90u);
  EXPECT_EQ(std::string(decoded.value().runs[1].data, 5), "defgh");

  // Truncation, trailing garbage and a bad magic all refuse to decode.
  EXPECT_FALSE(decode_patch(frame.substr(0, frame.size() - 1)).ok());
  EXPECT_FALSE(decode_patch(frame + "x").ok());
  std::string bad_magic = frame;
  bad_magic[0] = 'X';
  EXPECT_FALSE(decode_patch(bad_magic).ok());
  EXPECT_FALSE(decode_patch("").ok());
}

// --- replica store ---------------------------------------------------------

/// Builds a valid frame patching `replica` into `updated` with one run.
std::string make_patch(std::uint64_t id, std::uint32_t epoch,
                       const std::string& updated, std::uint32_t run_offset,
                       std::uint32_t run_length) {
  PatchHeader header;
  header.template_id = id;
  header.epoch = epoch;
  header.run_count = 1;
  header.body_len = static_cast<std::uint32_t>(updated.size());
  header.checksum = fnv1a(updated);
  std::string frame;
  append_patch_header(frame, header);
  append_run_header(frame, run_offset, run_length);
  frame.append(updated.data() + run_offset, run_length);
  return frame;
}

TEST(ReplicaStore, AppliesRunsAndAdvancesEpoch) {
  ReplicaStore store;
  EXPECT_FALSE(store.pin(42, "hello world"));  // first pin, not a re-pin
  EXPECT_TRUE(store.pin(42, "hello world"));   // re-pin reported

  const std::string v1 = "hello earth";
  Result<PatchFrame> frame = decode_patch(make_patch(42, 1, v1, 6, 5));
  ASSERT_TRUE(frame.ok());
  std::string reconstructed;
  ASSERT_TRUE(store.apply(frame.value(), &reconstructed).ok());
  EXPECT_EQ(reconstructed, v1);

  // Epoch chains: the next frame must carry 2.
  const std::string v2 = "hellooearth";
  Result<PatchFrame> next = decode_patch(make_patch(42, 2, v2, 0, 6));
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(store.apply(next.value(), &reconstructed).ok());
  EXPECT_EQ(reconstructed, v2);

  const ReplicaStore::Stats stats = store.stats();
  EXPECT_EQ(stats.pins, 1u);
  EXPECT_EQ(stats.repins, 1u);
  EXPECT_EQ(stats.applies, 2u);
  EXPECT_EQ(stats.pinned_replicas, 1u);
  EXPECT_EQ(stats.pinned_bytes, 11u);
}

TEST(ReplicaStore, EveryValidationFailureNacksAndErases) {
  // Unknown ID.
  {
    ReplicaStore store;
    Result<PatchFrame> frame = decode_patch(make_patch(1, 1, "xx", 0, 1));
    std::string out;
    const Status applied = store.apply(frame.value(), &out);
    EXPECT_FALSE(applied.ok());
    EXPECT_EQ(applied.error().code, ErrorCode::kNotFound);
  }
  // Epoch gap (a lost patch): replica erased, so a later correct-looking
  // frame NACKs too — the sender must re-pin with a full send.
  {
    ReplicaStore store;
    store.pin(1, "hello");
    Result<PatchFrame> gap = decode_patch(make_patch(1, 2, "hellp", 4, 1));
    std::string out;
    EXPECT_FALSE(store.apply(gap.value(), &out).ok());
    Result<PatchFrame> ok_frame = decode_patch(make_patch(1, 1, "hellp", 4, 1));
    const Status after = store.apply(ok_frame.value(), &out);
    EXPECT_FALSE(after.ok());
    EXPECT_EQ(after.error().code, ErrorCode::kNotFound);
    EXPECT_EQ(store.stats().nacks, 2u);
    EXPECT_EQ(store.stats().pinned_replicas, 0u);
  }
  // Body length mismatch.
  {
    ReplicaStore store;
    store.pin(1, "hello");
    Result<PatchFrame> frame = decode_patch(make_patch(1, 1, "hello!", 0, 1));
    std::string out;
    EXPECT_FALSE(store.apply(frame.value(), &out).ok());
  }
  // Run out of bounds.
  {
    ReplicaStore store;
    store.pin(1, "hello");
    PatchHeader header;
    header.template_id = 1;
    header.epoch = 1;
    header.run_count = 1;
    header.body_len = 5;
    header.checksum = fnv1a("hello");
    std::string frame;
    append_patch_header(frame, header);
    append_run_header(frame, 4, 2);  // [4, 6) exceeds the 5-byte replica
    frame += "xy";
    Result<PatchFrame> decoded = decode_patch(frame);
    ASSERT_TRUE(decoded.ok());
    std::string out;
    EXPECT_FALSE(store.apply(decoded.value(), &out).ok());
  }
  // Checksum mismatch.
  {
    ReplicaStore store;
    store.pin(1, "hello");
    std::string frame = make_patch(1, 1, "hellp", 4, 1);
    frame[28] ^= 0x5a;  // corrupt the checksum field
    Result<PatchFrame> decoded = decode_patch(frame);
    ASSERT_TRUE(decoded.ok());
    std::string out;
    EXPECT_FALSE(store.apply(decoded.value(), &out).ok());
    EXPECT_EQ(store.stats().pinned_replicas, 0u);
  }
}

TEST(ReplicaStore, LruEvictionUnderCountBudget) {
  ReplicaStore::Options options;
  options.max_replicas = 2;
  ReplicaStore store(options);
  store.pin(1, "one");
  store.pin(2, "two");
  store.pin(3, "three");  // evicts 1 (least recently used)
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_EQ(store.stats().pinned_replicas, 2u);
  std::string out;
  Result<PatchFrame> frame = decode_patch(make_patch(1, 1, "onx", 2, 1));
  EXPECT_EQ(store.apply(frame.value(), &out).error().code,
            ErrorCode::kNotFound);
}

// --- pipeline patch sends reconstruct byte-for-byte ------------------------

TEST(DiffWirePipeline, PatchSendsReconstructByteIdentical) {
  core::SendPipeline::Options options;
  options.tmpl = stuffed_config();
  core::SendPipeline pipeline(options);
  core::UpdateJournal journal;
  pipeline.set_journal(&journal);
  ClientSession session(/*token=*/7);
  pipeline.set_diffwire(&session);

  // A reference pipeline without diff-wire produces the logical body the
  // receiver must observe at every step.
  core::SendPipeline reference(options);

  std::vector<double> values = soap::doubles_with_serialized_length(64, 17, 1);
  const RpcCall call1 = soap::make_double_array_call(values);
  const std::uint64_t wire_id = session.wire_id(call1.structure_signature());

  // First send: full body + offer headers.
  auto [full_wire, full_report] = capture_send(pipeline, call1);
  EXPECT_FALSE(full_report.patch_send);
  http::HttpRequest full_request = parse_bytewise(full_wire);
  ASSERT_NE(full_request.find(kDiffHeader), nullptr);
  EXPECT_EQ(full_request.find(kDiffHeader)->value, kOfferValue);
  std::uint64_t offered_id = 0;
  ASSERT_NE(full_request.find(kTemplateHeader), nullptr);
  ASSERT_TRUE(
      parse_template_id(full_request.find(kTemplateHeader)->value, &offered_id));
  EXPECT_EQ(offered_id, wire_id);
  auto [ref_wire1, ref_report1] = capture_send(reference, call1);
  EXPECT_EQ(full_request.body, parse_bytewise(ref_wire1).body);
  EXPECT_EQ(full_report.body_bytes_logical, full_request.body.size());

  // Receiver pins; sender learns of the ack.
  ReplicaStore store;
  store.pin(wire_id, full_request.body);
  session.note_ack(wire_id);

  // Changed values: a perfect structural match goes out as a patch frame.
  bsoap::Rng rng(99);
  values[3] = soap::double_with_serialized_length(rng, 17);
  values[4] = soap::double_with_serialized_length(rng, 9);
  values[60] = soap::double_with_serialized_length(rng, 23);
  const RpcCall call2 = soap::make_double_array_call(values);
  auto [patch_wire, patch_report] = capture_send(pipeline, call2);
  EXPECT_TRUE(patch_report.patch_send);
  EXPECT_FALSE(patch_report.patch_replay);
  EXPECT_EQ(patch_report.match, core::MatchKind::kPerfectStructural);
  EXPECT_GE(patch_report.patch_runs, 1u);

  http::HttpRequest patch_request = parse_bytewise(patch_wire);
  ASSERT_NE(patch_request.find("Content-Type"), nullptr);
  EXPECT_EQ(patch_request.find("Content-Type")->value, kPatchContentType);
  Result<PatchFrame> frame = decode_patch(patch_request.body);
  ASSERT_TRUE(frame.ok()) << frame.error().to_string();
  EXPECT_EQ(frame.value().header.epoch, 1u);

  std::string reconstructed;
  ASSERT_TRUE(store.apply(frame.value(), &reconstructed).ok());
  auto [ref_wire2, ref_report2] = capture_send(reference, call2);
  const std::string expected = parse_bytewise(ref_wire2).body;
  EXPECT_EQ(reconstructed, expected);  // byte-for-byte
  EXPECT_EQ(patch_report.body_bytes_logical, expected.size());
  // The patch frame is far smaller than the envelope it replaces.
  EXPECT_LT(patch_report.envelope_bytes, expected.size() / 2);
  EXPECT_LT(patch_report.wire_bytes, full_report.wire_bytes / 2);

  // Unchanged resend: a content match degenerates to a header-only replay.
  auto [replay_wire, replay_report] = capture_send(pipeline, call2);
  EXPECT_TRUE(replay_report.patch_send);
  EXPECT_TRUE(replay_report.patch_replay);
  EXPECT_EQ(replay_report.patch_runs, 0u);
  Result<PatchFrame> replay = decode_patch(parse_bytewise(replay_wire).body);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.value().header.replay());
  EXPECT_EQ(replay.value().header.epoch, 2u);
  ASSERT_TRUE(store.apply(replay.value(), &reconstructed).ok());
  EXPECT_EQ(reconstructed, expected);

  const ClientDiffStats& stats = session.stats();
  EXPECT_EQ(stats.offers_sent, 1u);
  EXPECT_EQ(stats.acks, 1u);
  EXPECT_EQ(stats.patch_sends, 2u);
  EXPECT_EQ(stats.patch_replays, 1u);
  EXPECT_GT(stats.bytes_saved, 0u);
}

TEST(DiffWirePipeline, StructuralUpdateFallsBackToFullSendAndReoffers) {
  core::SendPipeline::Options options;  // exact stuffing: growth must shift
  core::SendPipeline pipeline(options);
  core::UpdateJournal journal;
  pipeline.set_journal(&journal);
  ClientSession session(/*token=*/11);
  pipeline.set_diffwire(&session);

  std::vector<double> values{1.0, 2.0, 3.0};
  auto [wire1, report1] = capture_send(
      pipeline, soap::make_double_array_call(values));
  const std::uint64_t wire_id = session.wire_id(
      soap::make_double_array_call(values).structure_signature());
  session.note_ack(wire_id);

  // A longer value outgrows its exact-width field: the update is
  // structural, so the send must NOT go out as a patch.
  values[1] = 2.000000000000004;
  auto [wire2, report2] = capture_send(
      pipeline, soap::make_double_array_call(values));
  EXPECT_FALSE(report2.patch_send);
  http::HttpRequest request = parse_bytewise(wire2);
  ASSERT_NE(request.find(kDiffHeader), nullptr);
  EXPECT_EQ(request.find(kDiffHeader)->value, kOfferValue);  // re-offers
  EXPECT_EQ(session.stats().offers_sent, 2u);
  EXPECT_EQ(session.stats().patch_sends, 0u);
}

// --- end-to-end ------------------------------------------------------------

BsoapClientConfig diff_client_config() {
  BsoapClientConfig cfg;
  cfg.tmpl = stuffed_config();
  cfg.diffwire = true;
  return cfg;
}

net::Dialer tcp_dialer(std::uint16_t port) {
  return [port] { return net::tcp_connect(port); };
}

/// Drives `iters` invokes with a few values mutated per step; every result
/// must match the locally computed sum (proving the server reconstructed
/// the envelope the client meant to send).
void drive_mutating_invokes(BsoapClient& client, int iters,
                            std::uint64_t seed) {
  std::vector<double> values = soap::doubles_with_serialized_length(64, 17, seed);
  bsoap::Rng rng(seed ^ 0xabcdef);
  for (int i = 0; i < iters; ++i) {
    values[static_cast<std::size_t>(i) % values.size()] =
        soap::double_with_serialized_length(rng, 17);
    Result<Value> result = client.invoke(soap::make_double_array_call(values));
    ASSERT_TRUE(result.ok()) << "iter " << i << ": "
                             << result.error().to_string();
    EXPECT_EQ(result.value().as_double(), sum_of(values)) << "iter " << i;
  }
}

TEST(DiffWireEndToEnd, BlockingEnginePinsPatchesAndReplays) {
  server::ServerRuntimeOptions options;
  options.workers = 1;
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  BsoapClient client(tcp_dialer(server.value()->port()),
                     diff_client_config());
  drive_mutating_invokes(client, 10, 5);

  // Invoke 1 pinned (full + offer + ack), 2..10 were patch frames.
  const ClientDiffStats* cs = client.diffwire_stats();
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->offers_sent, 1u);
  EXPECT_EQ(cs->acks, 1u);
  EXPECT_EQ(cs->patch_sends, 9u);
  EXPECT_EQ(cs->patch_nacks, 0u);
  EXPECT_GT(cs->bytes_saved, 0u);

  // A different array length is a new shape: its first invoke pins a
  // second replica, and the unchanged resend crosses as a header-only
  // replay frame.
  std::vector<double> fixed{1.0, 2.0, 4.0};
  const RpcCall repeat = soap::make_double_array_call(fixed);
  ASSERT_TRUE(client.invoke(repeat).ok());  // full + offer (new shape)
  ASSERT_TRUE(client.invoke(repeat).ok());  // content match -> replay
  EXPECT_GT(client.diffwire_stats()->patch_replays, 0u);

  ASSERT_TRUE(wait_for([&] {
    return server.value()->stats().patch_sends >= 10u;
  }));
  const server::ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.patch_nacks, 0u);
  EXPECT_EQ(stats.fallback_full_sends, 0u);
  EXPECT_GT(stats.patch_replays, 0u);
  EXPECT_GT(stats.bytes_saved, 0u);
  EXPECT_EQ(stats.diff_pinned_replicas, 2u);
  EXPECT_GT(stats.diff_pinned_bytes, 0u);
  EXPECT_EQ(stats.requests, 12u);
  EXPECT_EQ(stats.faults, 0u);
  server.value()->stop();
}

TEST(DiffWireEndToEnd, NackRecoveryFallsBackToFullSendAndRepins) {
  server::ServerRuntimeOptions options;
  options.workers = 1;
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  BsoapClient client(tcp_dialer(server.value()->port()),
                     diff_client_config());
  drive_mutating_invokes(client, 5, 21);
  EXPECT_EQ(client.diffwire_stats()->patch_sends, 4u);

  // Simulate replica loss (restart/eviction): the next patch NACKs, the
  // client falls back to a full send within the same invoke, and re-pins.
  server.value()->replicas()->clear();
  drive_mutating_invokes(client, 3, 22);

  const ClientDiffStats* cs = client.diffwire_stats();
  EXPECT_EQ(cs->patch_nacks, 1u);
  EXPECT_EQ(cs->fallback_full_sends, 1u);
  EXPECT_EQ(cs->offers_sent, 2u);
  EXPECT_EQ(cs->acks, 2u);
  // 4 before the nack, the nacked frame itself (counted at send time),
  // and 2 after the re-pin.
  EXPECT_EQ(cs->patch_sends, 7u);

  ASSERT_TRUE(wait_for(
      [&] { return server.value()->stats().patch_nacks == 1u; }));
  const server::ServerStats stats = server.value()->stats();
  // clear() erased the replica, so the post-NACK full send is a fresh pin,
  // not a re-pin — fallback_full_sends counts offers that *replace* a
  // live replica (structural fallbacks), which never happened here.
  EXPECT_EQ(stats.fallback_full_sends, 0u);
  EXPECT_EQ(stats.faults, 0u);
  server.value()->stop();
}

TEST(DiffWireEndToEnd, ReactorEngineSpeaksTheSameProtocol) {
  server::ServerRuntimeOptions options;
  options.workers = 2;
  options.io_model = server::IoModel::kReactor;
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  BsoapClient client(tcp_dialer(server.value()->port()),
                     diff_client_config());
  drive_mutating_invokes(client, 10, 31);
  EXPECT_EQ(client.diffwire_stats()->patch_sends, 9u);
  EXPECT_EQ(client.diffwire_stats()->patch_nacks, 0u);

  // NACK recovery works identically on the reactor engine.
  server.value()->replicas()->clear();
  drive_mutating_invokes(client, 3, 32);
  EXPECT_EQ(client.diffwire_stats()->patch_nacks, 1u);
  EXPECT_EQ(client.diffwire_stats()->acks, 2u);

  ASSERT_TRUE(wait_for(
      [&] { return server.value()->stats().patch_sends >= 11u; }));
  EXPECT_EQ(server.value()->stats().faults, 0u);
  server.value()->stop();
}

TEST(DiffWireEndToEnd, InjectedWriteFaultsNeverFailARequest) {
  server::ServerRuntimeOptions options;
  options.workers = 2;
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  // Every dialed connection injects probabilistic short writes (each dial
  // gets a distinct seed so retries do not replay the same fault). A patch
  // that dies mid-write is rolled back and retried; if the server applied
  // it anyway, the epoch gap NACKs the retry and the invoke falls back to a
  // full send — either way the request must succeed.
  const std::uint16_t port = server.value()->port();
  auto dial_count = std::make_shared<std::atomic<std::uint64_t>>(0);
  net::Dialer dial = [port, dial_count]()
      -> Result<std::unique_ptr<net::Transport>> {
    Result<std::unique_ptr<net::Transport>> conn = net::tcp_connect(port);
    if (!conn.ok()) return conn.error();
    net::FaultPlan plan;
    plan.write_failure_rate = 0.15;
    plan.seed = 1000 + dial_count->fetch_add(1);
    return std::unique_ptr<net::Transport>(
        std::make_unique<net::FaultInjectingTransport>(
            std::move(conn.value()), plan));
  };
  BsoapClient client(dial, diff_client_config());
  drive_mutating_invokes(client, 60, 41);  // asserts every invoke succeeds

  const ClientDiffStats* cs = client.diffwire_stats();
  EXPECT_GT(cs->patch_sends, 0u);
  EXPECT_EQ(server.value()->stats().faults, 0u);
  server.value()->stop();
}

TEST(DiffWireEndToEnd, EightWorkerSharedCacheStress) {
  server::ServerRuntimeOptions options;
  options.workers = 8;
  options.shared_cache = true;
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  // Eight clients patching concurrently: distinct session tokens mean
  // distinct wire IDs, so the same call shape pins eight separate replicas
  // instead of clobbering one.
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 40;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      BsoapClient client(tcp_dialer(server.value()->port()),
                         diff_client_config());
      std::vector<double> values = soap::doubles_with_serialized_length(
          32, 17, 100 + static_cast<std::uint64_t>(t));
      bsoap::Rng rng(200 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kItersPerThread; ++i) {
        values[static_cast<std::size_t>(i) % values.size()] =
            soap::double_with_serialized_length(rng, 17);
        Result<Value> result =
            client.invoke(soap::make_double_array_call(values));
        if (!result.ok() || result.value().as_double() != sum_of(values)) {
          failures.fetch_add(1);
          return;
        }
      }
      if (client.diffwire_stats()->patch_sends == 0) failures.fetch_add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const server::ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.diff_pinned_replicas, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.patch_nacks, 0u);
  EXPECT_EQ(stats.faults, 0u);
  server.value()->stop();
}

}  // namespace
}  // namespace bsoap::diffwire
