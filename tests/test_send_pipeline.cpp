// Tests for the staged send path: per-stage SendObserver accounting across
// the paper's four match kinds, framer wire equivalence against the raw
// HttpConnection path, wire-byte accounting, and template sharing through
// the one pipeline every sender uses.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/multi_endpoint.hpp"
#include "core/send_pipeline.hpp"
#include "core/template_builder.hpp"
#include "http/connection.hpp"
#include "http/framer.hpp"
#include "net/inmemory.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/workload.hpp"

namespace bsoap::core {
namespace {

using soap::RpcCall;

struct CapturingServer {
  explicit CapturingServer(net::Transport& transport)
      : connection(transport) {}

  Result<RpcCall> next_call() {
    Result<http::HttpRequest> request = connection.read_request();
    if (!request.ok()) return request.error();
    last_request = request.value();
    return soap::read_rpc_envelope(request.value().body);
  }

  http::HttpConnection connection;
  http::HttpRequest last_request;
};

/// Reads the peer's raw bytes until end of stream (sender must shut down
/// its write side first).
std::string drain_raw(net::Transport& transport) {
  std::string out;
  char buf[4096];
  for (;;) {
    Result<std::size_t> got = transport.recv(buf, sizeof(buf));
    if (!got.ok() || got.value() == 0) break;
    out.append(buf, got.value());
  }
  return out;
}

TEST(SendPipeline, ObserverSeesAllStagesAcrossMatchKinds) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClient client(*client_t);
  CapturingServer server(*server_t);
  StageTimings timings;
  client.pipeline().set_observer(&timings);

  auto values = soap::doubles_with_serialized_length(30, 18, 1);

  // First-time send: the update stage serializes the whole envelope.
  Result<SendReport> first =
      client.send_call(soap::make_double_array_call(values));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().match, MatchKind::kFirstTime);
  EXPECT_EQ(timings.sends(), 1u);
  for (const SendStage stage :
       {SendStage::kResolve, SendStage::kUpdate, SendStage::kFrame,
        SendStage::kWrite}) {
    EXPECT_EQ(timings.totals(stage).count, 1u) << send_stage_name(stage);
  }
  EXPECT_EQ(timings.totals(SendStage::kUpdate).bytes,
            first.value().envelope_bytes);
  EXPECT_EQ(timings.totals(SendStage::kWrite).bytes, first.value().wire_bytes);
  EXPECT_EQ(timings.last_report().match, MatchKind::kFirstTime);
  ASSERT_TRUE(server.next_call().ok());

  // Content match: nothing rewritten, so zero update bytes.
  timings.reset();
  Result<SendReport> resend =
      client.send_call(soap::make_double_array_call(values));
  ASSERT_TRUE(resend.ok());
  EXPECT_EQ(resend.value().match, MatchKind::kContentMatch);
  EXPECT_EQ(timings.totals(SendStage::kUpdate).bytes, 0u);
  EXPECT_EQ(timings.totals(SendStage::kWrite).count, 1u);
  ASSERT_TRUE(server.next_call().ok());

  // Perfect structural match: same-width value change rewrites only that
  // field's bytes.
  timings.reset();
  values[3] = soap::doubles_with_serialized_length(1, 18, 2)[0];
  Result<SendReport> psm =
      client.send_call(soap::make_double_array_call(values));
  ASSERT_TRUE(psm.ok());
  EXPECT_EQ(psm.value().match, MatchKind::kPerfectStructural);
  EXPECT_GT(timings.totals(SendStage::kUpdate).bytes, 0u);
  EXPECT_LT(timings.totals(SendStage::kUpdate).bytes,
            psm.value().envelope_bytes);
  ASSERT_TRUE(server.next_call().ok());

  // Partial structural match: a wider value forces an expansion.
  timings.reset();
  values[10] = soap::doubles_with_serialized_length(1, 22, 3)[0];
  Result<SendReport> partial =
      client.send_call(soap::make_double_array_call(values));
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial.value().match, MatchKind::kPartialStructural);
  EXPECT_GT(partial.value().update.expansions, 0u);
  EXPECT_EQ(timings.totals(SendStage::kFrame).count, 1u);
  Result<RpcCall> received = server.next_call();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().params[0].value.doubles(), values);
}

TEST(SendPipeline, TrackedSendsGoThroughTheSameStages) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClient client(*client_t);
  CapturingServer server(*server_t);
  StageTimings timings;
  client.pipeline().set_observer(&timings);

  auto values = soap::doubles_with_serialized_length(20, 18, 4);
  auto message = client.bind(soap::make_double_array_call(values));

  // Clean DUT: content match, zero update bytes, all four stages observed.
  Result<SendReport> first = message->send();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().match, MatchKind::kContentMatch);
  EXPECT_EQ(timings.totals(SendStage::kResolve).count, 1u);
  EXPECT_EQ(timings.totals(SendStage::kUpdate).bytes, 0u);
  EXPECT_EQ(timings.sends(), 1u);
  ASSERT_TRUE(server.next_call().ok());

  timings.reset();
  message->set_double_element(0, 2,
                              soap::doubles_with_serialized_length(1, 18, 5)[0]);
  Result<SendReport> dirty = message->send();
  ASSERT_TRUE(dirty.ok());
  EXPECT_EQ(dirty.value().match, MatchKind::kPerfectStructural);
  EXPECT_GT(timings.totals(SendStage::kUpdate).bytes, 0u);
  EXPECT_EQ(timings.totals(SendStage::kWrite).bytes, dirty.value().wire_bytes);
  ASSERT_TRUE(server.next_call().ok());
}

TEST(SendPipeline, WireBytesExceedEnvelopeBytes) {
  // Content-Length framing: wire = HTTP head + envelope.
  {
    auto [client_t, server_t] = net::make_inmemory_transports();
    BsoapClient client(*client_t);
    CapturingServer server(*server_t);
    Result<SendReport> report = client.send_call(
        soap::make_double_array_call(soap::random_doubles(50, 6)));
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report.value().wire_bytes, report.value().envelope_bytes);
    ASSERT_TRUE(server.next_call().ok());
    EXPECT_EQ(report.value().envelope_bytes, server.last_request.body.size());
  }
  // Chunked framing: wire additionally counts the chunk-size lines.
  {
    auto [client_t, server_t] = net::make_inmemory_transports();
    BsoapClientConfig config =
        BsoapClientConfig{}.with_framing(http::Framing::kChunked);
    config.tmpl.chunk.chunk_size = 1024;  // force several chunks
    BsoapClient client(*client_t, config);
    CapturingServer server(*server_t);
    Result<SendReport> report = client.send_call(
        soap::make_double_array_call(soap::random_doubles(200, 7)));
    ASSERT_TRUE(report.ok());
    ASSERT_TRUE(server.next_call().ok());
    ASSERT_NE(server.last_request.find("Transfer-Encoding"), nullptr);
    // head + per-chunk framing: strictly more than head + envelope alone.
    const std::size_t head_free =
        report.value().wire_bytes - report.value().envelope_bytes;
    EXPECT_GT(head_free, std::string("0\r\n\r\n").size());
    EXPECT_EQ(report.value().envelope_bytes, server.last_request.body.size());
  }
}

/// The pipeline's wire bytes must be identical to framing the same template
/// through the raw HttpConnection path with the same head and framer.
void expect_wire_equivalence(const http::Framer& framer,
                             http::Framing framing_config) {
  const RpcCall call =
      soap::make_double_array_call(soap::random_doubles(150, 8));

  BsoapClientConfig config = BsoapClientConfig{}.with_framing(framing_config);
  config.tmpl.chunk.chunk_size = 2048;  // several chunks => several slices

  // New path: pipeline send.
  auto [pipe_client_t, pipe_server_t] = net::make_inmemory_transports();
  {
    BsoapClient client(*pipe_client_t, config);
    ASSERT_TRUE(client.send_call(call).ok());
  }
  pipe_client_t->shutdown_send();
  const std::string pipeline_bytes = drain_raw(*pipe_server_t);

  // Old path: identical head, template bytes from an identically configured
  // build, framed by HttpConnection::send_request.
  auto [raw_client_t, raw_server_t] = net::make_inmemory_transports();
  {
    auto tmpl = build_template(call, config.tmpl);
    http::HttpRequest head;
    head.method = "POST";
    head.target = "/";
    head.headers.push_back(http::Header{"Host", "localhost"});
    head.headers.push_back(
        http::Header{"Content-Type", "text/xml; charset=utf-8"});
    head.headers.push_back(
        http::Header{"SOAPAction", "\"" + call.method + "\""});
    std::vector<net::ConstSlice> body;
    tmpl->buffer().append_slices(body);
    http::HttpConnection connection(*raw_client_t);
    ASSERT_TRUE(connection.send_request(std::move(head), body, framer).ok());
  }
  raw_client_t->shutdown_send();
  const std::string raw_bytes = drain_raw(*raw_server_t);

  ASSERT_FALSE(pipeline_bytes.empty());
  EXPECT_EQ(pipeline_bytes, raw_bytes);
}

TEST(SendPipeline, ContentLengthWireEquivalence) {
  expect_wire_equivalence(http::content_length_framer(),
                          http::Framing::kContentLength);
}

TEST(SendPipeline, ChunkedWireEquivalence) {
  expect_wire_equivalence(http::chunked_framer(), http::Framing::kChunked);
}

TEST(SendPipeline, MultiEndpointContentMatchReuseIsObserved) {
  struct Endpoint {
    std::unique_ptr<net::Transport> client_side;
    std::unique_ptr<net::Transport> server_side;
    Endpoint() {
      auto [a, b] = net::make_inmemory_transports();
      client_side = std::move(a);
      server_side = std::move(b);
    }
  };

  Endpoint a;
  Endpoint b;
  MultiEndpointClient client;
  client.add_endpoint(*a.client_side, "/svc-a");
  client.add_endpoint(*b.client_side, "/svc-b");
  StageTimings timings;
  client.pipeline().set_observer(&timings);

  const RpcCall call =
      soap::make_double_array_call(soap::random_doubles(40, 9));
  Result<SendReport> to_a = client.send_to(0, call);
  ASSERT_TRUE(to_a.ok());
  EXPECT_EQ(to_a.value().match, MatchKind::kFirstTime);
  EXPECT_GT(to_a.value().wire_bytes, to_a.value().envelope_bytes);

  // Same content to a different endpoint: the shared store resolves the
  // same template and the update stage rewrites nothing.
  timings.reset();
  Result<SendReport> to_b = client.send_to(1, call);
  ASSERT_TRUE(to_b.ok());
  EXPECT_EQ(to_b.value().match, MatchKind::kContentMatch);
  EXPECT_EQ(timings.totals(SendStage::kUpdate).bytes, 0u);
  EXPECT_EQ(timings.totals(SendStage::kWrite).count, 1u);
  EXPECT_EQ(client.store().size(), 1u);

  // Both servers received a parseable copy of the same envelope.
  for (Endpoint* endpoint : {&a, &b}) {
    http::HttpConnection connection(*endpoint->server_side);
    Result<http::HttpRequest> request = connection.read_request();
    ASSERT_TRUE(request.ok());
    Result<RpcCall> received = soap::read_rpc_envelope(request.value().body);
    ASSERT_TRUE(received.ok());
    EXPECT_TRUE(received.value().params[0].value == call.params[0].value);
  }
}

TEST(SendPipeline, FramerOverrideTakesEffect) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClient client(*client_t);  // default: Content-Length
  CapturingServer server(*server_t);
  client.pipeline().set_framer(&http::chunked_framer());

  ASSERT_TRUE(client
                  .send_call(soap::make_double_array_call(
                      soap::random_doubles(30, 10)))
                  .ok());
  ASSERT_TRUE(server.next_call().ok());
  EXPECT_NE(server.last_request.find("Transfer-Encoding"), nullptr);
  EXPECT_EQ(server.last_request.find("Content-Length"), nullptr);

  client.pipeline().set_framer(nullptr);
  ASSERT_TRUE(client
                  .send_call(soap::make_double_array_call(
                      soap::random_doubles(30, 11)))
                  .ok());
  ASSERT_TRUE(server.next_call().ok());
  EXPECT_NE(server.last_request.find("Content-Length"), nullptr);
}

}  // namespace
}  // namespace bsoap::core
