// Tests for the binary-format substrates the paper's related work weighs
// against differential serialization: base64 payloads and DIME framing.
#include <gtest/gtest.h>

#include <cstring>

#include "buffer/sinks.hpp"
#include "common/rng.hpp"
#include "soap/base64.hpp"
#include "soap/dime.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"

namespace bsoap::soap {
namespace {

TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(std::string_view("")), "");
  EXPECT_EQ(base64_encode(std::string_view("f")), "Zg==");
  EXPECT_EQ(base64_encode(std::string_view("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(std::string_view("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(std::string_view("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(std::string_view("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(std::string_view("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  const auto decode_str = [](std::string_view text) {
    Result<std::vector<std::uint8_t>> bytes = base64_decode(text);
    EXPECT_TRUE(bytes.ok());
    return bytes.ok() ? std::string(bytes.value().begin(), bytes.value().end())
                      : std::string();
  };
  EXPECT_EQ(decode_str("Zm9vYmFy"), "foobar");
  EXPECT_EQ(decode_str("Zm9vYg=="), "foob");
  EXPECT_EQ(decode_str("Zg=="), "f");
  // Whitespace tolerated (XML line wrapping).
  EXPECT_EQ(decode_str("Zm9v\nYmFy"), "foobar");
  EXPECT_EQ(decode_str("  Zm9v  YmE=  "), "fooba");
}

TEST(Base64, DecodeErrors) {
  EXPECT_FALSE(base64_decode("Zm9v!").ok());
  EXPECT_FALSE(base64_decode("Zg==Zg==").ok());  // data after padding
  EXPECT_FALSE(base64_decode("Z").ok());         // 1-char final quantum
  EXPECT_FALSE(base64_decode("Zm9===").ok());    // over-padded
}

TEST(Base64, RandomRoundTrip) {
  Rng rng(9);
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint8_t> data(rng.next_below(200));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
    Result<std::vector<std::uint8_t>> back =
        base64_decode(base64_encode(data));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), data);
  }
}

TEST(Base64, DoublePackingRoundTripsExactly) {
  const auto values = random_doubles(500, 4);
  Result<std::vector<double>> back =
      base64_unpack_doubles(base64_pack_doubles(values));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&back.value()[i], &values[i], sizeof(double)), 0);
  }
  // A binary payload is ~4/3 of the raw bytes — far smaller than ASCII XML.
  EXPECT_LT(base64_pack_doubles(values).size(),
            values.size() * sizeof(double) * 3 / 2);
}

TEST(Dime, SingleRecordRoundTrip) {
  const std::string message = make_dime_message("<envelope/>", {});
  Result<std::vector<DimeRecord>> records = parse_dime(message);
  ASSERT_TRUE(records.ok()) << records.error().to_string();
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_TRUE(records.value()[0].message_begin);
  EXPECT_TRUE(records.value()[0].message_end);
  EXPECT_EQ(records.value()[0].type, "text/xml");
  EXPECT_EQ(records.value()[0].data, "<envelope/>");
}

TEST(Dime, EnvelopePlusAttachments) {
  const auto values = random_doubles(100, 11);
  DimeRecord attachment;
  attachment.type = "application/octet-stream";
  attachment.type_format = DimeTypeFormat::kMediaType;
  attachment.id = "cid:array-1";
  attachment.data.assign(reinterpret_cast<const char*>(values.data()),
                         values.size() * sizeof(double));

  const std::string message =
      make_dime_message("<env>with attachment</env>", {attachment});
  Result<std::vector<DimeRecord>> records = parse_dime(message);
  ASSERT_TRUE(records.ok()) << records.error().to_string();
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_TRUE(records.value()[0].message_begin);
  EXPECT_FALSE(records.value()[0].message_end);
  EXPECT_TRUE(records.value()[1].message_end);
  EXPECT_EQ(records.value()[1].id, "cid:array-1");
  ASSERT_EQ(records.value()[1].data.size(), values.size() * sizeof(double));
  EXPECT_EQ(std::memcmp(records.value()[1].data.data(), values.data(),
                        records.value()[1].data.size()),
            0);
}

TEST(Dime, PaddingAlignment) {
  // Data lengths that exercise every 4-byte padding remainder.
  for (const std::size_t len : {0u, 1u, 2u, 3u, 4u, 5u, 7u}) {
    DimeRecord attachment;
    attachment.type = "x";  // 1 byte: 3 bytes of padding
    attachment.data = std::string(len, 'd');
    const std::string message = make_dime_message("e", {attachment});
    EXPECT_EQ(message.size() % 4, 0u) << len;
    Result<std::vector<DimeRecord>> records = parse_dime(message);
    ASSERT_TRUE(records.ok()) << len;
    EXPECT_EQ(records.value()[1].data, std::string(len, 'd'));
  }
}

TEST(Dime, ParserErrors) {
  EXPECT_FALSE(parse_dime("").ok());
  EXPECT_FALSE(parse_dime("short").ok());

  // Valid message, then truncate it.
  std::string message = make_dime_message("<envelope/>", {});
  EXPECT_FALSE(parse_dime(std::string_view(message).substr(0, message.size() - 4)).ok());

  // Missing ME: hand-build a single record without the end flag.
  DimeRecord record;
  record.message_begin = true;
  record.data = "x";
  EXPECT_FALSE(parse_dime(write_dime({record})).ok());

  // Wrong version.
  std::string bad = message;
  bad[0] = static_cast<char>(0x2 << 3);  // version 2
  EXPECT_FALSE(parse_dime(bad).ok());
}

TEST(Dime, RandomizedRoundTrip) {
  Rng rng(21);
  for (int round = 0; round < 50; ++round) {
    std::vector<DimeRecord> attachments(rng.next_below(4));
    for (std::size_t i = 0; i < attachments.size(); ++i) {
      attachments[i].id = "cid:" + std::to_string(i);
      attachments[i].type = rng.chance(1, 2) ? "application/octet-stream"
                                             : "image/x-mesh";
      const std::size_t len = rng.next_below(500);
      for (std::size_t k = 0; k < len; ++k) {
        attachments[i].data += static_cast<char>(rng.next_below(256));
      }
    }
    std::string envelope = "<env n=\"" + std::to_string(round) + "\"/>";
    Result<std::vector<DimeRecord>> records =
        parse_dime(make_dime_message(envelope, attachments));
    ASSERT_TRUE(records.ok()) << round;
    ASSERT_EQ(records.value().size(), attachments.size() + 1);
    EXPECT_EQ(records.value()[0].data, envelope);
    for (std::size_t i = 0; i < attachments.size(); ++i) {
      EXPECT_EQ(records.value()[i + 1].data, attachments[i].data);
      EXPECT_EQ(records.value()[i + 1].id, attachments[i].id);
    }
  }
}

}  // namespace
}  // namespace bsoap::soap
