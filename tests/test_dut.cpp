// Tests for the Data Update Tracking table: entry bookkeeping, dirty bits,
// and position renumbering under shifts and chunk splits.
#include <gtest/gtest.h>

#include "core/dut_table.hpp"

namespace bsoap::core {
namespace {

DutEntry entry_at(std::uint32_t chunk, std::uint32_t offset,
                  LeafType type = LeafType::kDouble) {
  DutEntry e;
  e.type = &leaf_type_info(type);
  e.pos = buffer::BufPos{chunk, offset};
  e.serialized_len = 3;
  e.field_width = 3;
  e.close_tag_len = 7;
  return e;
}

TEST(LeafTypeInfoTest, PaperMaxWidths) {
  EXPECT_EQ(leaf_type_info(LeafType::kInt32).max_chars, 11);
  EXPECT_EQ(leaf_type_info(LeafType::kDouble).max_chars, 24);
  // Strings cannot be stuffed: no maximum size (paper footnote 2).
  EXPECT_EQ(leaf_type_info(LeafType::kString).max_chars, 0);
}

TEST(DutTableTest, DirtyBookkeeping) {
  DutTable dut;
  for (int i = 0; i < 4; ++i) {
    dut.add_entry(entry_at(0, static_cast<std::uint32_t>(i * 16)));
  }
  EXPECT_FALSE(dut.any_dirty());
  dut.mark_dirty(1);
  dut.mark_dirty(1);  // idempotent
  dut.mark_dirty(3);
  EXPECT_EQ(dut.dirty_count(), 2u);
  dut.clear_dirty(1);
  EXPECT_EQ(dut.dirty_count(), 1u);
  dut.clear_dirty(1);  // idempotent
  EXPECT_EQ(dut.dirty_count(), 1u);
  dut.clear_dirty(3);
  EXPECT_FALSE(dut.any_dirty());
}

TEST(DutTableTest, ApplyShiftOnlyAffectsSuffixOfChunk) {
  DutTable dut;
  dut.add_entry(entry_at(0, 10));
  dut.add_entry(entry_at(0, 30));
  dut.add_entry(entry_at(0, 50));
  dut.add_entry(entry_at(1, 5));
  dut.apply_shift(0, 30, 4);
  EXPECT_EQ(dut[0].pos.offset, 10u);  // before the shift point
  EXPECT_EQ(dut[1].pos.offset, 34u);
  EXPECT_EQ(dut[2].pos.offset, 54u);
  EXPECT_EQ(dut[3].pos.chunk, 1u);   // other chunk untouched
  EXPECT_EQ(dut[3].pos.offset, 5u);
  EXPECT_TRUE(dut.check_invariants());
}

TEST(DutTableTest, ApplySplitRenumbersChunks) {
  DutTable dut;
  dut.add_entry(entry_at(0, 10));
  dut.add_entry(entry_at(0, 40));
  dut.add_entry(entry_at(1, 8));
  dut.apply_split(0, 25);
  EXPECT_EQ(dut[0].pos.chunk, 0u);
  EXPECT_EQ(dut[0].pos.offset, 10u);
  EXPECT_EQ(dut[1].pos.chunk, 1u);
  EXPECT_EQ(dut[1].pos.offset, 15u);  // 40 - 25
  EXPECT_EQ(dut[2].pos.chunk, 2u);
  EXPECT_EQ(dut[2].pos.offset, 8u);
  EXPECT_TRUE(dut.check_invariants());
}

TEST(DutTableTest, FirstEntryAtOrAfter) {
  DutTable dut;
  dut.add_entry(entry_at(0, 10));
  dut.add_entry(entry_at(0, 30));
  dut.add_entry(entry_at(2, 0));
  EXPECT_EQ(dut.first_entry_at_or_after(buffer::BufPos{0, 0}), 0u);
  EXPECT_EQ(dut.first_entry_at_or_after(buffer::BufPos{0, 11}), 1u);
  EXPECT_EQ(dut.first_entry_at_or_after(buffer::BufPos{0, 30}), 1u);
  EXPECT_EQ(dut.first_entry_at_or_after(buffer::BufPos{1, 0}), 2u);
  EXPECT_EQ(dut.first_entry_at_or_after(buffer::BufPos{3, 0}), 3u);
}

TEST(DutTableTest, InvariantViolationsDetected) {
  {
    DutTable dut;
    DutEntry bad = entry_at(0, 10);
    bad.field_width = 2;  // below serialized_len
    dut.add_entry(bad);
    EXPECT_FALSE(dut.check_invariants());
  }
  {
    DutTable dut;
    dut.add_entry(entry_at(0, 20));
    dut.add_entry(entry_at(0, 10));  // out of document order
    EXPECT_FALSE(dut.check_invariants());
  }
  {
    DutTable dut;
    DutEntry s = entry_at(0, 10, LeafType::kString);
    // String entry without a shadow string.
    dut.add_entry(s);
    EXPECT_FALSE(dut.check_invariants());
  }
}

TEST(DutTableTest, PaddingAccessor) {
  DutEntry e = entry_at(0, 0);
  e.serialized_len = 5;
  e.field_width = 24;
  EXPECT_EQ(e.padding(), 19u);
}

TEST(DutTableTest, Clear) {
  DutTable dut;
  dut.add_entry(entry_at(0, 0));
  dut.mark_dirty(0);
  dut.clear();
  EXPECT_EQ(dut.size(), 0u);
  EXPECT_FALSE(dut.any_dirty());
}

}  // namespace
}  // namespace bsoap::core
