// Tests for the SOAP value model: construction, equality, structural
// comparison and structure signatures.
#include <gtest/gtest.h>

#include "soap/value.hpp"

namespace bsoap::soap {
namespace {

TEST(Value, ScalarAccessors) {
  EXPECT_EQ(Value::from_int(42).as_int(), 42);
  EXPECT_EQ(Value::from_int64(1ll << 40).as_int64(), 1ll << 40);
  EXPECT_EQ(Value::from_double(2.5).as_double(), 2.5);
  EXPECT_TRUE(Value::from_bool(true).as_bool());
  EXPECT_EQ(Value::from_string("s").as_string(), "s");
}

TEST(Value, LeafCounts) {
  EXPECT_EQ(Value::from_int(1).leaf_count(), 1u);
  EXPECT_EQ(Value::from_double_array({1, 2, 3}).leaf_count(), 3u);
  EXPECT_EQ(Value::from_mio_array({Mio{}, Mio{}}).leaf_count(), 6u);
  Value s = Value::make_struct();
  s.add_member("a", Value::from_int(1));
  s.add_member("b", Value::from_double_array({1, 2}));
  EXPECT_EQ(s.leaf_count(), 3u);
}

TEST(Value, Equality) {
  EXPECT_EQ(Value::from_double_array({1, 2}), Value::from_double_array({1, 2}));
  EXPECT_FALSE(Value::from_double_array({1, 2}) ==
               Value::from_double_array({1, 3}));
  EXPECT_FALSE(Value::from_int(1) == Value::from_double(1));
}

TEST(Value, SameStructureIgnoresContents) {
  EXPECT_TRUE(Value::from_double_array({1, 2}).same_structure(
      Value::from_double_array({9, 9})));
  EXPECT_FALSE(Value::from_double_array({1, 2}).same_structure(
      Value::from_double_array({1, 2, 3})));
  Value s1 = Value::make_struct();
  s1.add_member("a", Value::from_int(1));
  Value s2 = Value::make_struct();
  s2.add_member("a", Value::from_int(7));
  Value s3 = Value::make_struct();
  s3.add_member("b", Value::from_int(1));
  EXPECT_TRUE(s1.same_structure(s2));
  EXPECT_FALSE(s1.same_structure(s3));
}

RpcCall sample_call(std::size_t n) {
  RpcCall call;
  call.method = "op";
  call.service_namespace = "urn:x";
  call.params.push_back(
      Param{"data", Value::from_double_array(std::vector<double>(n, 1.0))});
  return call;
}

TEST(RpcCallTest, SignatureStableUnderValueChanges) {
  RpcCall a = sample_call(10);
  RpcCall b = sample_call(10);
  b.params[0].value.doubles()[3] = 99.0;
  EXPECT_EQ(a.structure_signature(), b.structure_signature());
  EXPECT_TRUE(a.same_structure(b));
}

TEST(RpcCallTest, SignatureChangesWithStructure) {
  const RpcCall a = sample_call(10);
  EXPECT_NE(a.structure_signature(), sample_call(11).structure_signature());

  RpcCall renamed = sample_call(10);
  renamed.method = "other";
  EXPECT_NE(a.structure_signature(), renamed.structure_signature());

  RpcCall other_ns = sample_call(10);
  other_ns.service_namespace = "urn:y";
  EXPECT_NE(a.structure_signature(), other_ns.structure_signature());

  RpcCall renamed_param = sample_call(10);
  renamed_param.params[0].name = "payload";
  EXPECT_NE(a.structure_signature(), renamed_param.structure_signature());

  RpcCall int_array = sample_call(10);
  int_array.params[0].value =
      Value::from_int_array(std::vector<std::int32_t>(10, 1));
  EXPECT_NE(a.structure_signature(), int_array.structure_signature());
}

TEST(RpcCallTest, SignatureCoversNestedStructs) {
  RpcCall a;
  a.method = "op";
  Value s = Value::make_struct();
  s.add_member("inner", Value::from_int(1));
  a.params.push_back(Param{"p", s});

  RpcCall b = a;
  b.params[0].value.members()[0].name = "renamed";
  EXPECT_NE(a.structure_signature(), b.structure_signature());
  EXPECT_FALSE(a.same_structure(b));
}

TEST(Mio, Equality) {
  EXPECT_EQ((Mio{1, 2, 3.5}), (Mio{1, 2, 3.5}));
  EXPECT_FALSE((Mio{1, 2, 3.5}) == (Mio{1, 2, 3.6}));
}

}  // namespace
}  // namespace bsoap::soap
