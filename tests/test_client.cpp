// End-to-end client tests: BsoapClient and BoundMessage over in-memory and
// TCP transports, template-store behaviour, HTTP framing of template sends,
// and full request/response loops against the SOAP server.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "baseline/gsoap_like.hpp"
#include "common/rng.hpp"
#include "baseline/xsoap_like.hpp"
#include "core/client.hpp"
#include "core/template_builder.hpp"
#include "http/connection.hpp"
#include "net/inmemory.hpp"
#include "net/tcp.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/soap_server.hpp"
#include "soap/workload.hpp"

namespace bsoap::core {
namespace {

using soap::RpcCall;
using soap::Value;

/// Receives HTTP requests on the server side of an in-memory pipe and
/// returns the parsed SOAP calls.
struct CapturingServer {
  explicit CapturingServer(net::Transport& transport)
      : connection(transport) {}

  Result<RpcCall> next_call() {
    Result<http::HttpRequest> request = connection.read_request();
    if (!request.ok()) return request.error();
    last_request = request.value();
    return soap::read_rpc_envelope(request.value().body);
  }

  http::HttpConnection connection;
  http::HttpRequest last_request;
};

TEST(BsoapClient, FirstSendThenContentMatch) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClient client(*client_t);
  CapturingServer server(*server_t);

  const RpcCall call = soap::make_double_array_call(soap::random_doubles(20, 1));

  Result<SendReport> first = client.send_call(call);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().match, MatchKind::kFirstTime);
  Result<RpcCall> received1 = server.next_call();
  ASSERT_TRUE(received1.ok());
  EXPECT_TRUE(received1.value().params[0].value == call.params[0].value);

  Result<SendReport> second = client.send_call(call);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().match, MatchKind::kContentMatch);
  Result<RpcCall> received2 = server.next_call();
  ASSERT_TRUE(received2.ok());
  EXPECT_TRUE(received2.value().params[0].value == call.params[0].value);
}

TEST(BsoapClient, StructuralMatchRewritesAndServerSeesNewValues) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClient client(*client_t);
  CapturingServer server(*server_t);

  auto values = soap::doubles_with_serialized_length(50, 18, 2);
  ASSERT_TRUE(client.send_call(soap::make_double_array_call(values)).ok());
  (void)server.next_call();

  values[7] = soap::doubles_with_serialized_length(1, 18, 3)[0];
  values[33] = soap::doubles_with_serialized_length(1, 18, 4)[0];
  Result<SendReport> report =
      client.send_call(soap::make_double_array_call(values));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().match, MatchKind::kPerfectStructural);
  EXPECT_EQ(report.value().update.values_rewritten, 2u);

  Result<RpcCall> received = server.next_call();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().params[0].value.doubles(), values);
}

TEST(BsoapClient, HttpFramingHasCorrectContentLength) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClient client(*client_t);
  CapturingServer server(*server_t);

  const RpcCall call = soap::make_int_array_call(soap::random_ints(100, 5));
  ASSERT_TRUE(client.send_call(call).ok());
  ASSERT_TRUE(server.next_call().ok());
  const http::Header* cl = server.last_request.find("Content-Length");
  ASSERT_NE(cl, nullptr);
  EXPECT_EQ(cl->value, std::to_string(server.last_request.body.size()));
  EXPECT_EQ(server.last_request.method, "POST");
  ASSERT_NE(server.last_request.find("SOAPAction"), nullptr);
  EXPECT_EQ(server.last_request.find("SOAPAction")->value, "\"sendData\"");
}

TEST(BsoapClient, ChunkedHttpFraming) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClientConfig config;
  config.http_chunked = true;  // deprecated shim; must still force kChunked
  config.tmpl.chunk.chunk_size = 1024;  // force several chunks
  BsoapClient client(*client_t, config);
  CapturingServer server(*server_t);

  const RpcCall call =
      soap::make_double_array_call(soap::random_doubles(200, 6));
  ASSERT_TRUE(client.send_call(call).ok());
  Result<RpcCall> received = server.next_call();
  ASSERT_TRUE(received.ok());
  ASSERT_NE(server.last_request.find("Transfer-Encoding"), nullptr);
  EXPECT_TRUE(received.value().params[0].value == call.params[0].value);
}

TEST(BsoapClient, SizeChangeIsFirstTimeSendForNewStructure) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClient client(*client_t);
  CapturingServer server(*server_t);

  ASSERT_TRUE(
      client.send_call(soap::make_double_array_call(soap::random_doubles(10, 7)))
          .ok());
  (void)server.next_call();
  Result<SendReport> bigger = client.send_call(
      soap::make_double_array_call(soap::random_doubles(11, 8)));
  ASSERT_TRUE(bigger.ok());
  EXPECT_EQ(bigger.value().match, MatchKind::kFirstTime);
  (void)server.next_call();
  EXPECT_EQ(client.store().size(), 2u);
}

TEST(BsoapClient, TemplateStoreLruEviction) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClientConfig config;
  config.max_templates = 2;
  BsoapClient client(*client_t, config);
  CapturingServer server(*server_t);

  for (std::size_t n = 5; n < 9; ++n) {
    ASSERT_TRUE(client
                    .send_call(soap::make_double_array_call(
                        soap::random_doubles(n, n)))
                    .ok());
    (void)server.next_call();
  }
  EXPECT_EQ(client.store().size(), 2u);
  EXPECT_EQ(client.store().evictions(), 2u);

  // The evicted structure is a first-time send again.
  Result<SendReport> report = client.send_call(
      soap::make_double_array_call(soap::random_doubles(5, 5)));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().match, MatchKind::kFirstTime);
}

TEST(BsoapClient, TemplateStoreByteBudgetEviction) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClientConfig config;
  config.max_templates = 16;  // count bound never binds in this test
  config.max_template_bytes = 4096;
  BsoapClient client(*client_t, config);
  CapturingServer server(*server_t);

  // Each distinct array length saves a new template (~1 KiB of envelope for
  // 20 doubles); four distinct shapes overflow a 4 KiB byte budget even
  // though the count budget has room for all of them.
  for (std::size_t n = 20; n < 28; n += 2) {
    ASSERT_TRUE(
        client.send_call(soap::make_double_array_call(soap::random_doubles(n, n)))
            .ok());
    (void)server.next_call();
  }
  EXPECT_LE(client.store().bytes_retained(), 4096u);
  EXPECT_LT(client.store().size(), 4u);
  EXPECT_GT(client.store().byte_evictions(), 0u);
  EXPECT_EQ(client.store().evictions(), 0u);  // count LRU never triggered

  // Evicted shapes are first-time sends again; retained ones still match.
  Result<SendReport> oldest = client.send_call(
      soap::make_double_array_call(soap::random_doubles(20, 20)));
  ASSERT_TRUE(oldest.ok());
  EXPECT_EQ(oldest.value().match, MatchKind::kFirstTime);
  (void)server.next_call();
  Result<SendReport> newest = client.send_call(
      soap::make_double_array_call(soap::random_doubles(26, 26)));
  ASSERT_TRUE(newest.ok());
  EXPECT_EQ(newest.value().match, MatchKind::kContentMatch);
  (void)server.next_call();
}

TEST(BsoapClient, ByteBudgetEnforcedAfterInPlaceTemplateGrowth) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClientConfig config;
  config.max_templates = 16;
  // Exact stuffing so longer values force in-place expansion (growth).
  config.tmpl.stuffing.mode = StuffingPolicy::Mode::kExact;
  BsoapClient client(*client_t, config);
  CapturingServer server(*server_t);

  // Two shapes of short values fit the budget comfortably...
  std::vector<double> growing(40, 1.0);
  ASSERT_TRUE(client.send_call(soap::make_double_array_call(growing)).ok());
  (void)server.next_call();
  ASSERT_TRUE(
      client.send_call(soap::make_double_array_call(std::vector<double>(44, 2.0)))
          .ok());
  (void)server.next_call();
  const std::size_t resident = client.store().bytes_retained();
  ASSERT_EQ(client.store().size(), 2u);

  // ...then pin the budget at the current occupancy and grow the first
  // template in place: every value expands from 1 to 24 characters, a
  // partial structural match that pushes the store over budget mid-send.
  client.store().set_max_bytes(resident);
  std::fill(growing.begin(), growing.end(), -2.2250738585072014e-308);
  Result<SendReport> grown =
      client.send_call(soap::make_double_array_call(growing));
  ASSERT_TRUE(grown.ok());
  EXPECT_EQ(grown.value().match, MatchKind::kPartialStructural);
  (void)server.next_call();

  // The growth delta was visible to the budget pass: the other shape was
  // evicted, and the cached byte total agrees with the debug walk.
  EXPECT_GT(client.store().byte_evictions(), 0u);
  EXPECT_EQ(client.store().size(), 1u);
  EXPECT_LE(client.store().bytes_retained(), resident);
}

TEST(TemplateStore, ClearRoutesThroughTheSingleRemovalPath) {
  TemplateStore store(8, 0);
  for (std::size_t n = 10; n < 13; ++n) {
    store.insert(build_template(
        soap::make_double_array_call(soap::random_doubles(n, n)),
        TemplateConfig{}));
  }
  ASSERT_EQ(store.size(), 3u);
  ASSERT_GT(store.bytes_retained(), 0u);
  const std::uint64_t evictions_before = store.evictions();

  store.clear();

  // Contents are gone, byte accounting is zeroed (the debug cross-check
  // walk inside bytes_retained() verifies index/LRU/bytes agree), and
  // clear() is not an eviction — the tallies are history, not contents.
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.bytes_retained(), 0u);
  EXPECT_EQ(store.evictions(), evictions_before);

  // The store stays usable after clear().
  MessageTemplate* again = store.insert(build_template(
      soap::make_double_array_call(soap::random_doubles(10, 10)),
      TemplateConfig{}));
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(store.find(again->signature), again);
  EXPECT_EQ(store.bytes_retained(), again->buffer().total_size());
}

TEST(BsoapClient, ByteBudgetKeepsMostRecentTemplateEvenWhenOversized) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClientConfig config;
  config.max_template_bytes = 64;  // smaller than any single envelope
  BsoapClient client(*client_t, config);
  CapturingServer server(*server_t);

  // The template in use is never evicted: repeated sends of one oversized
  // message still hit the differential path.
  const RpcCall call = soap::make_double_array_call(soap::random_doubles(30, 2));
  ASSERT_TRUE(client.send_call(call).ok());
  (void)server.next_call();
  Result<SendReport> again = client.send_call(call);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().match, MatchKind::kContentMatch);
  EXPECT_EQ(client.store().size(), 1u);
  EXPECT_GT(client.store().bytes_retained(), 64u);
  (void)server.next_call();
}

TEST(BsoapClient, FullSerializationModeNeverReuses) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClientConfig config;
  config.differential = false;
  BsoapClient client(*client_t, config);
  CapturingServer server(*server_t);

  const RpcCall call = soap::make_double_array_call(soap::random_doubles(30, 9));
  for (int i = 0; i < 3; ++i) {
    Result<SendReport> report = client.send_call(call);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().match, MatchKind::kFirstTime);
    Result<RpcCall> received = server.next_call();
    ASSERT_TRUE(received.ok());
    EXPECT_TRUE(received.value().params[0].value == call.params[0].value);
  }
  EXPECT_EQ(client.store().size(), 0u);
}

TEST(BoundMessage, DirtyBitDrivenSends) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClient client(*client_t);
  CapturingServer server(*server_t);

  auto values = soap::doubles_with_serialized_length(40, 18, 10);
  auto message = client.bind(soap::make_double_array_call(values));

  // Clean DUT: content match.
  Result<SendReport> first = message->send();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().match, MatchKind::kContentMatch);
  (void)server.next_call();

  // Dirty two elements.
  const double nv = soap::doubles_with_serialized_length(1, 18, 11)[0];
  message->set_double_element(0, 5, nv);
  message->set_double_element(0, 6, nv);
  EXPECT_EQ(message->dirty_count(), 2u);
  Result<SendReport> second = message->send();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().match, MatchKind::kPerfectStructural);
  EXPECT_EQ(second.value().update.values_rewritten, 2u);
  EXPECT_EQ(message->dirty_count(), 0u);

  Result<RpcCall> received = server.next_call();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().params[0].value.doubles()[5], nv);
  EXPECT_EQ(received.value().params[0].value.doubles()[6], nv);
}

TEST(BoundMessage, MioSetters) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClient client(*client_t);
  CapturingServer server(*server_t);

  auto mios = soap::random_mios(10, 12);
  auto message = client.bind(soap::make_mio_array_call(mios));
  ASSERT_TRUE(message->send().ok());  // prime the template
  (void)server.next_call();

  message->set_mio_field_value(0, 4, 123.5);
  EXPECT_EQ(message->dirty_count(), 1u);  // only the double leaf
  ASSERT_TRUE(message->send().ok());
  Result<RpcCall> received = server.next_call();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().params[0].value.mios()[4].value, 123.5);
  EXPECT_EQ(received.value().params[0].value.mios()[4].x, mios[4].x);

  message->set_mio_element(0, 2, soap::Mio{9, 8, 7.5});
  EXPECT_EQ(message->dirty_count(), 3u);
  ASSERT_TRUE(message->send().ok());
  received = server.next_call();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().params[0].value.mios()[2], (soap::Mio{9, 8, 7.5}));
}

TEST(BoundMessage, ScalarAndStringSetters) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  BsoapClient client(*client_t);
  CapturingServer server(*server_t);

  RpcCall call;
  call.method = "update";
  call.service_namespace = "urn:t";
  call.params.push_back(soap::Param{"count", Value::from_int(1)});
  call.params.push_back(soap::Param{"label", Value::from_string("first")});
  auto message = client.bind(std::move(call));
  ASSERT_TRUE(message->send().ok());
  (void)server.next_call();

  message->set_int(0, 42);
  message->set_string(1, "second & longer label");
  ASSERT_TRUE(message->send().ok());
  Result<RpcCall> received = server.next_call();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().params[0].value.as_int(), 42);
  EXPECT_EQ(received.value().params[1].value.as_string(),
            "second & longer label");
}

TEST(BoundMessage, RandomizedMixedOperationsMatchOracle) {
  // Long random sequence of setter + send operations; the server-visible
  // array must always equal the in-memory array.
  Rng rng(8086);
  auto [client_t, server_t] = net::make_inmemory_transports();
  core::BsoapClientConfig config;
  config.tmpl.stuffing.mode =
      rng.chance(1, 2) ? StuffingPolicy::Mode::kTypeMax
                       : StuffingPolicy::Mode::kExact;
  BsoapClient client(*client_t, config);
  CapturingServer server(*server_t);

  auto mios = soap::random_mios(40, 1);
  auto message = client.bind(soap::make_mio_array_call(mios));

  for (int step = 0; step < 30; ++step) {
    const std::size_t ops = rng.next_below(8);
    for (std::size_t o = 0; o < ops; ++o) {
      const std::size_t idx = rng.next_below(mios.size());
      if (rng.chance(1, 2)) {
        const double v = Rng(rng.next_u64()).next_unit_double();
        mios[idx].value = v;
        message->set_mio_field_value(0, idx, v);
      } else {
        const soap::Mio m{static_cast<std::int32_t>(rng.next_in(-9999, 9999)),
                          static_cast<std::int32_t>(rng.next_in(0, 1 << 20)),
                          Rng(rng.next_u64()).next_finite_double()};
        mios[idx] = m;
        message->set_mio_element(0, idx, m);
      }
    }
    ASSERT_TRUE(message->send().ok());
    Result<RpcCall> received = server.next_call();
    ASSERT_TRUE(received.ok()) << "step " << step;
    ASSERT_EQ(received.value().params[0].value.mios(), mios)
        << "step " << step;
    ASSERT_TRUE(message->tmpl().check_invariants());
  }
}

TEST(BsoapClient, StuffedConfigKeepsStructuralMatchesUnderWidthChanges) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  core::BsoapClientConfig config;
  config.tmpl.stuffing.mode = StuffingPolicy::Mode::kTypeMax;
  BsoapClient client(*client_t, config);
  CapturingServer server(*server_t);

  auto values = soap::random_unit_doubles(50, 3);
  ASSERT_TRUE(client.send_call(soap::make_double_array_call(values)).ok());
  (void)server.next_call();
  for (int round = 0; round < 5; ++round) {
    // Wild width swings: 1-char and 24-char values never expand a stuffed
    // field, so every send stays a perfect structural match.
    values[static_cast<std::size_t>(round)] = round % 2 == 0 ? 1.0 : -2.2250738585072014e-308;
    Result<SendReport> report =
        client.send_call(soap::make_double_array_call(values));
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().match, MatchKind::kPerfectStructural);
    Result<RpcCall> received = server.next_call();
    ASSERT_TRUE(received.ok());
    EXPECT_EQ(received.value().params[0].value.doubles(), values);
  }
}

TEST(EndToEnd, InvokeAgainstSoapServer) {
  // Full RPC loop over real TCP against the handler-driven server.
  auto server = soap::SoapHttpServer::start([](const RpcCall& call) -> Result<Value> {
    if (call.method != "sum") {
      return Error{ErrorCode::kNotFound, "unknown method"};
    }
    double total = 0;
    for (const double v : call.params[0].value.doubles()) total += v;
    return Value::from_double(total);
  });
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(transport.ok());
  BsoapClient client(*transport.value());

  RpcCall call;
  call.method = "sum";
  call.service_namespace = "urn:calc";
  call.params.push_back(
      soap::Param{"data", Value::from_double_array({1.5, 2.5, 3.0})});

  for (int i = 0; i < 3; ++i) {
    Result<Value> result = client.invoke(call);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().as_double(), 7.0);
  }
  EXPECT_EQ(server.value()->requests_served(), 3u);

  // Faults propagate as errors.
  call.method = "nope";
  Result<Value> fault = client.invoke(call);
  EXPECT_FALSE(fault.ok());
  server.value()->stop();
}

TEST(Baselines, GSoapLikeSendsParseableEnvelopes) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  baseline::GSoapLikeClient client(*client_t);
  CapturingServer server(*server_t);

  const RpcCall call = soap::make_mio_array_call(soap::random_mios(30, 13));
  Result<std::size_t> sent = client.send_call(call);
  ASSERT_TRUE(sent.ok());
  EXPECT_EQ(sent.value(), client.last_envelope_size());
  Result<RpcCall> received = server.next_call();
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received.value().params[0].value == call.params[0].value);
}

TEST(Baselines, XSoapLikeSendsParseableEnvelopes) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  baseline::XSoapLikeClient client(*client_t);
  CapturingServer server(*server_t);

  const RpcCall call =
      soap::make_double_array_call(soap::random_unit_doubles(30, 14));
  ASSERT_TRUE(client.send_call(call).ok());
  Result<RpcCall> received = server.next_call();
  ASSERT_TRUE(received.ok());
  const auto& got = received.value().params[0].value.doubles();
  ASSERT_EQ(got.size(), 30u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    // %.17g round-trips exactly.
    EXPECT_EQ(got[i], call.params[0].value.doubles()[i]);
  }
}

TEST(Baselines, GSoapLikeInvokeRoundTrip) {
  auto server = soap::SoapHttpServer::start(
      [](const RpcCall& call) -> Result<Value> {
        return Value::from_int(
            static_cast<std::int32_t>(call.params.size()));
      });
  ASSERT_TRUE(server.ok());
  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(transport.ok());
  baseline::GSoapLikeClient client(*transport.value());

  RpcCall call;
  call.method = "count";
  call.service_namespace = "urn:c";
  call.params.push_back(soap::Param{"a", Value::from_int(1)});
  call.params.push_back(soap::Param{"b", Value::from_int(2)});
  Result<Value> result = client.invoke(call);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().as_int(), 2);
  server.value()->stop();
}

}  // namespace
}  // namespace bsoap::core
