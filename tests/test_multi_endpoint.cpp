// Tests for template sharing across endpoints (paper Section 6):
// serialization amortized over sends to different services.
#include <gtest/gtest.h>

#include "core/multi_endpoint.hpp"
#include "http/connection.hpp"
#include "net/inmemory.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/workload.hpp"

namespace bsoap::core {
namespace {

using soap::RpcCall;

struct Endpoint {
  std::unique_ptr<net::Transport> client_side;
  std::unique_ptr<net::Transport> server_side;

  Endpoint() {
    auto [a, b] = net::make_inmemory_transports();
    client_side = std::move(a);
    server_side = std::move(b);
  }

  Result<RpcCall> receive() {
    http::HttpConnection connection(*server_side);
    Result<http::HttpRequest> request = connection.read_request();
    if (!request.ok()) return request.error();
    return soap::read_rpc_envelope(request.value().body);
  }
};

TEST(MultiEndpointClient, SecondEndpointGetsContentMatch) {
  Endpoint a;
  Endpoint b;
  MultiEndpointClient client;
  client.add_endpoint(*a.client_side, "/svc-a");
  client.add_endpoint(*b.client_side, "/svc-b");

  const RpcCall call = soap::make_double_array_call(soap::random_doubles(50, 1));

  Result<SendReport> to_a = client.send_to(0, call);
  ASSERT_TRUE(to_a.ok());
  EXPECT_EQ(to_a.value().match, MatchKind::kFirstTime);
  ASSERT_TRUE(a.receive().ok());

  // Same data to a DIFFERENT service: the shared template means no
  // serialization at all (the paper's amortization hypothesis).
  Result<SendReport> to_b = client.send_to(1, call);
  ASSERT_TRUE(to_b.ok());
  EXPECT_EQ(to_b.value().match, MatchKind::kContentMatch);
  Result<RpcCall> received = b.receive();
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received.value().params[0].value == call.params[0].value);
  EXPECT_EQ(client.store().size(), 1u);  // one template serves both
}

TEST(MultiEndpointClient, BroadcastSerializesOnce) {
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  MultiEndpointClient client;
  for (int i = 0; i < 4; ++i) {
    endpoints.push_back(std::make_unique<Endpoint>());
    client.add_endpoint(*endpoints.back()->client_side);
  }
  EXPECT_EQ(client.endpoint_count(), 4u);

  const RpcCall call = soap::make_mio_array_call(soap::random_mios(20, 2));
  Result<std::vector<SendReport>> reports = client.broadcast(call);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports.value().size(), 4u);
  EXPECT_EQ(reports.value()[0].match, MatchKind::kFirstTime);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(reports.value()[i].match, MatchKind::kContentMatch);
  }
  for (auto& endpoint : endpoints) {
    Result<RpcCall> received = endpoint->receive();
    ASSERT_TRUE(received.ok());
    EXPECT_TRUE(received.value().params[0].value == call.params[0].value);
  }
}

TEST(MultiEndpointClient, UpdatesPropagateToAllEndpoints) {
  Endpoint a;
  Endpoint b;
  MultiEndpointClient client;
  client.add_endpoint(*a.client_side);
  client.add_endpoint(*b.client_side);

  auto values = soap::doubles_with_serialized_length(30, 18, 3);
  ASSERT_TRUE(client.send_to(0, soap::make_double_array_call(values)).ok());
  (void)a.receive();

  values[4] = soap::doubles_with_serialized_length(1, 18, 4)[0];
  Result<SendReport> report =
      client.send_to(1, soap::make_double_array_call(values));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().match, MatchKind::kPerfectStructural);
  EXPECT_EQ(report.value().update.values_rewritten, 1u);
  Result<RpcCall> received = b.receive();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().params[0].value.doubles(), values);
}

TEST(MultiEndpointClient, DistinctStructuresKeepDistinctTemplates) {
  Endpoint a;
  MultiEndpointClient client;
  client.add_endpoint(*a.client_side);
  ASSERT_TRUE(
      client.send_to(0, soap::make_double_array_call(soap::random_doubles(5, 5)))
          .ok());
  (void)a.receive();
  ASSERT_TRUE(
      client.send_to(0, soap::make_int_array_call(soap::random_ints(5, 6)))
          .ok());
  (void)a.receive();
  EXPECT_EQ(client.store().size(), 2u);
}

}  // namespace
}  // namespace bsoap::core
