// Tests for the chunked message store: append/reserve building, in-place
// edits, expansion via slack/realloc/split, and a randomized stress test
// against a flat-string oracle.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "buffer/chunked_buffer.hpp"
#include "buffer/sinks.hpp"
#include "common/rng.hpp"

namespace bsoap::buffer {
namespace {

ChunkConfig small_chunks() {
  ChunkConfig config;
  config.chunk_size = 64;
  config.split_threshold = 128;
  config.tail_reserve = 16;
  return config;
}

TEST(ChunkedBuffer, EmptyInvariants) {
  ChunkedBuffer buf;
  EXPECT_EQ(buf.total_size(), 0u);
  EXPECT_EQ(buf.chunk_count(), 0u);
  EXPECT_EQ(buf.linearize(), "");
  EXPECT_TRUE(buf.check_invariants());
}

TEST(ChunkedBuffer, AppendSpansChunks) {
  ChunkedBuffer buf(small_chunks());
  std::string data;
  for (int i = 0; i < 20; ++i) data += "0123456789";
  buf.append(data);
  EXPECT_EQ(buf.total_size(), data.size());
  EXPECT_GT(buf.chunk_count(), 1u);  // 200 bytes > 48-byte payload limit
  EXPECT_EQ(buf.linearize(), data);
  EXPECT_TRUE(buf.check_invariants());
}

TEST(ChunkedBuffer, PayloadLimitLeavesTailReserve) {
  ChunkedBuffer buf(small_chunks());
  std::string data(200, 'x');
  buf.append(data);
  for (std::size_t i = 0; i + 1 < buf.chunk_count(); ++i) {
    // Full chunks must have exactly tail_reserve bytes of slack.
    EXPECT_EQ(buf.chunk_view(i).size(),
              small_chunks().chunk_size - small_chunks().tail_reserve);
  }
}

TEST(ChunkedBuffer, ReserveContiguous) {
  ChunkedBuffer buf(small_chunks());
  buf.append("head");
  char* p = buf.reserve_contiguous(10);
  const BufPos pos = buf.reserved_pos();
  std::memcpy(p, "0123456789", 10);
  buf.commit(10);
  EXPECT_EQ(buf.linearize(), "head0123456789");
  EXPECT_EQ(std::string(buf.at(pos), 10), "0123456789");
}

TEST(ChunkedBuffer, ReserveOpensNewChunkWhenFull) {
  ChunkedBuffer buf(small_chunks());
  buf.append(std::string(45, 'a'));  // payload limit is 48
  (void)buf.reserve_contiguous(10);  // cannot fit contiguously
  buf.commit(10);
  EXPECT_EQ(buf.chunk_count(), 2u);
}

TEST(ChunkedBuffer, CommitLessThanReserved) {
  ChunkedBuffer buf(small_chunks());
  char* p = buf.reserve_contiguous(24);
  std::memcpy(p, "abc", 3);
  buf.commit(3);
  EXPECT_EQ(buf.total_size(), 3u);
  EXPECT_EQ(buf.linearize(), "abc");
}

TEST(ChunkedBuffer, WriteAt) {
  ChunkedBuffer buf(small_chunks());
  buf.append("hello world");
  buf.write_at(BufPos{0, 6}, "WORLD", 5);
  EXPECT_EQ(buf.linearize(), "hello WORLD");
}

TEST(ChunkedBuffer, ReadAtAcrossChunks) {
  ChunkedBuffer buf(small_chunks());
  std::string data;
  for (int i = 0; i < 30; ++i) data += static_cast<char>('a' + i % 26);
  for (int rep = 0; rep < 5; ++rep) buf.append(data);
  std::string out(60, '\0');
  buf.read_at(BufPos{0, 20}, out.data(), 60);
  EXPECT_EQ(out, buf.linearize().substr(20, 60));
}

TEST(ChunkedBuffer, ExpandWithinSlack) {
  ChunkedBuffer buf(small_chunks());
  buf.append("aaaBBBccc");
  const ExpandResult r = buf.expand_at(BufPos{0, 3}, 3, 8);
  EXPECT_EQ(r.outcome, ExpandOutcome::kSlack);
  buf.write_at(BufPos{0, 3}, "BBBBBBBB", 8);
  EXPECT_EQ(buf.linearize(), "aaaBBBBBBBBccc");
  EXPECT_TRUE(buf.check_invariants());
}

TEST(ChunkedBuffer, ExpandRealloc) {
  ChunkConfig config;
  config.chunk_size = 32;
  config.split_threshold = 1024;  // high threshold: realloc, don't split
  config.tail_reserve = 4;
  ChunkedBuffer buf(config);
  buf.append(std::string(28, 'a'));
  const ExpandResult r = buf.expand_at(BufPos{0, 0}, 4, 40);
  EXPECT_EQ(r.outcome, ExpandOutcome::kRealloc);
  EXPECT_EQ(buf.total_size(), 64u);
  EXPECT_TRUE(buf.check_invariants());
  EXPECT_EQ(buf.linearize().substr(40), std::string(24, 'a'));
}

TEST(ChunkedBuffer, ExpandSplit) {
  ChunkConfig config;
  config.chunk_size = 32;
  config.split_threshold = 32;  // any growth forces a split
  config.tail_reserve = 0;
  ChunkedBuffer buf(config);
  buf.append(std::string(16, 'a'));
  buf.append(std::string(16, 'b'));
  ASSERT_EQ(buf.chunk_count(), 1u);
  const ExpandResult r = buf.expand_at(BufPos{0, 4}, 4, 12);
  EXPECT_EQ(r.outcome, ExpandOutcome::kSplit);
  EXPECT_EQ(r.split_offset, 8u);
  EXPECT_EQ(buf.chunk_count(), 2u);
  // First chunk holds bytes [0, 4+12), second the rest.
  EXPECT_EQ(buf.chunk_view(0).size(), 16u);
  EXPECT_EQ(buf.chunk_view(1).size(), 24u);
  EXPECT_EQ(buf.total_size(), 40u);
  EXPECT_TRUE(buf.check_invariants());
  // Tail content preserved.
  EXPECT_EQ(buf.linearize().substr(24), std::string(16, 'b'));
}

TEST(ChunkedBuffer, ContractAt) {
  ChunkedBuffer buf(small_chunks());
  buf.append("aaaBBBBBBBBccc");
  buf.contract_at(BufPos{0, 3}, 8, 3);
  buf.write_at(BufPos{0, 3}, "BBB", 3);
  EXPECT_EQ(buf.linearize(), "aaaBBBccc");
  EXPECT_TRUE(buf.check_invariants());
}

TEST(ChunkedBuffer, SlicesMatchLinearize) {
  ChunkedBuffer buf(small_chunks());
  for (int i = 0; i < 10; ++i) buf.append("slice-content-");
  std::string joined;
  for (const auto& s : buf.slices()) joined.append(s.data, s.len);
  EXPECT_EQ(joined, buf.linearize());
}

TEST(ChunkedBuffer, Clear) {
  ChunkedBuffer buf(small_chunks());
  buf.append("data");
  buf.clear();
  EXPECT_EQ(buf.total_size(), 0u);
  EXPECT_EQ(buf.chunk_count(), 0u);
  buf.append("fresh");
  EXPECT_EQ(buf.linearize(), "fresh");
}

// Randomized stress: mirror every operation on a flat std::string oracle.
// Positions are tracked through expansions by replaying the same arithmetic
// the DUT table uses.
TEST(ChunkedBufferStress, MatchesFlatStringOracle) {
  Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    ChunkConfig config;
    config.chunk_size = 64 + rng.next_below(128);
    config.split_threshold = config.chunk_size * 2;
    config.tail_reserve = rng.next_below(16);
    ChunkedBuffer buf(config);
    std::string oracle;

    // Build phase: append random pieces, remember some marked regions.
    struct Region {
      BufPos pos;
      std::size_t flat_offset;
      std::size_t len;
    };
    std::vector<Region> regions;
    for (int step = 0; step < 40; ++step) {
      const std::size_t n = 1 + rng.next_below(30);
      std::string piece;
      for (std::size_t i = 0; i < n; ++i) {
        piece += static_cast<char>('a' + rng.next_below(26));
      }
      if (rng.chance(1, 3) && n <= config.payload_limit()) {
        char* p = buf.reserve_contiguous(n);
        const BufPos pos = buf.reserved_pos();
        std::memcpy(p, piece.data(), n);
        buf.commit(n);
        regions.push_back(Region{pos, oracle.size(), n});
      } else {
        buf.append(piece);
      }
      oracle += piece;
    }
    ASSERT_EQ(buf.linearize(), oracle);

    // Edit phase: overwrite and expand marked regions.
    for (int step = 0; step < 20 && !regions.empty(); ++step) {
      const std::size_t pick = rng.next_below(regions.size());
      Region& region = regions[pick];
      if (rng.chance(1, 2)) {
        // Overwrite in place.
        std::string repl(region.len, static_cast<char>('A' + rng.next_below(26)));
        buf.write_at(region.pos, repl.data(), repl.size());
        oracle.replace(region.flat_offset, region.len, repl);
      } else {
        // Expand by a few bytes.
        const std::size_t growth = 1 + rng.next_below(10);
        const std::size_t new_len = region.len + growth;
        const ExpandResult result =
            buf.expand_at(region.pos, region.len, new_len);
        std::string repl(new_len, static_cast<char>('0' + rng.next_below(10)));
        buf.write_at(region.pos, repl.data(), repl.size());
        oracle.replace(region.flat_offset, region.len, repl);
        // Replay position bookkeeping on the other regions.
        for (std::size_t j = 0; j < regions.size(); ++j) {
          if (j == pick) continue;
          Region& other = regions[j];
          if (other.flat_offset >= region.flat_offset + region.len) {
            other.flat_offset += growth;
            switch (result.outcome) {
              case ExpandOutcome::kSlack:
              case ExpandOutcome::kRealloc:
                if (other.pos.chunk == region.pos.chunk &&
                    other.pos.offset >= region.pos.offset + region.len) {
                  other.pos.offset += static_cast<std::uint32_t>(growth);
                }
                break;
              case ExpandOutcome::kSplit:
                if (other.pos.chunk == region.pos.chunk &&
                    other.pos.offset >= result.split_offset) {
                  other.pos.chunk += 1;
                  other.pos.offset -=
                      static_cast<std::uint32_t>(result.split_offset);
                } else if (other.pos.chunk > region.pos.chunk) {
                  other.pos.chunk += 1;
                }
                break;
            }
          }
        }
        region.len = new_len;
      }
      ASSERT_TRUE(buf.check_invariants());
      ASSERT_EQ(buf.linearize(), oracle) << "round " << round;
      // All regions still address their content correctly.
      for (const Region& r2 : regions) {
        std::string got(r2.len, '\0');
        buf.read_at(r2.pos, got.data(), r2.len);
        ASSERT_EQ(got, oracle.substr(r2.flat_offset, r2.len));
      }
    }
  }
}

TEST(ChunkedBuffer, TailReserveLargerThanChunkFallsBack) {
  ChunkConfig config;
  config.chunk_size = 32;
  config.tail_reserve = 64;  // larger than the chunk: payload = full chunk
  EXPECT_EQ(config.payload_limit(), 32u);
  ChunkedBuffer buf(config);
  buf.append(std::string(100, 'a'));
  EXPECT_EQ(buf.linearize(), std::string(100, 'a'));
  EXPECT_TRUE(buf.check_invariants());
}

TEST(ChunkedBuffer, ZeroLengthOperations) {
  ChunkedBuffer buf;
  buf.append("", 0);
  EXPECT_EQ(buf.total_size(), 0u);
  buf.append("abc");
  buf.write_at(BufPos{0, 1}, "", 0);
  const ExpandResult r = buf.expand_at(BufPos{0, 1}, 1, 1);  // no-op
  EXPECT_EQ(r.outcome, ExpandOutcome::kSlack);
  EXPECT_EQ(buf.linearize(), "abc");
}

TEST(StringSink, ReserveAndCommit) {
  StringSink sink;
  sink.append("ab");
  char* p = sink.reserve_contiguous(8);
  std::memcpy(p, "cdef", 4);
  sink.commit(4);
  EXPECT_EQ(sink.str(), "abcdef");
}

TEST(NullSink, CountsBytes) {
  NullSink sink;
  sink.append("abc");
  char* p = sink.reserve_contiguous(10);
  std::memcpy(p, "0123456789", 10);
  sink.commit(7);
  EXPECT_EQ(sink.size(), 10u);
}

}  // namespace
}  // namespace bsoap::buffer
