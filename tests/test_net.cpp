// Tests for the transport layer: sockets, scatter-gather sends, the drain
// server, and the simulated-bandwidth wrapper.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/timing.hpp"
#include "net/drain_server.hpp"
#include "net/inmemory.hpp"
#include "net/simulated_wire.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"

namespace bsoap::net {
namespace {

std::string recv_all(Transport& transport) {
  std::string out;
  char buf[4096];
  for (;;) {
    Result<std::size_t> got = transport.recv(buf, sizeof(buf));
    if (!got.ok() || got.value() == 0) return out;
    out.append(buf, got.value());
  }
}

TEST(SocketPair, SendRecv) {
  auto pair = make_socketpair_transports();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  ASSERT_TRUE(a->send("ping").ok());
  a->shutdown_send();
  EXPECT_EQ(recv_all(*b), "ping");
}

TEST(SocketPair, GatherSend) {
  auto pair = make_socketpair_transports();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  // More slices than the writev batch limit (64) to exercise batching.
  std::vector<std::string> pieces;
  std::vector<ConstSlice> slices;
  std::string expected;
  for (int i = 0; i < 150; ++i) {
    pieces.push_back("piece-" + std::to_string(i) + ";");
    expected += pieces.back();
  }
  for (const std::string& p : pieces) {
    slices.push_back(ConstSlice{p.data(), p.size()});
  }
  ASSERT_TRUE(a->send_slices(slices).ok());
  a->shutdown_send();
  EXPECT_EQ(recv_all(*b), expected);
}

TEST(SocketPair, LargeTransferThroughSmallBuffers) {
  // SO_SNDBUF is 32 KiB (paper options); a 4 MiB transfer requires the
  // write loop to handle short writes while a reader drains.
  auto pair = make_socketpair_transports();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  const std::string big(4 * 1024 * 1024, 'z');
  std::string received;
  std::thread reader([&] { received = recv_all(*b); });
  ASSERT_TRUE(a->send(big).ok());
  a->shutdown_send();
  reader.join();
  EXPECT_EQ(received.size(), big.size());
  EXPECT_EQ(received, big);
}

TEST(Tcp, ListenConnectExchange) {
  Result<TcpListener> listener = TcpListener::bind();
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value().port();
  ASSERT_NE(port, 0);

  std::string received;
  std::thread server([&] {
    Result<std::unique_ptr<Transport>> conn = listener.value().accept();
    ASSERT_TRUE(conn.ok());
    received = recv_all(*conn.value());
  });

  Result<std::unique_ptr<Transport>> client = tcp_connect(port);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->send("over tcp").ok());
  client.value()->shutdown_send();
  server.join();
  EXPECT_EQ(received, "over tcp");
}

TEST(DrainServerTest, CountsBytes) {
  Result<std::unique_ptr<DrainServer>> server = DrainServer::start();
  ASSERT_TRUE(server.ok());
  {
    Result<std::unique_ptr<Transport>> client =
        tcp_connect(server.value()->port());
    ASSERT_TRUE(client.ok());
    const std::string payload(100000, 'q');
    ASSERT_TRUE(client.value()->send(payload).ok());
    client.value()->shutdown_send();
    // Wait for the drain worker to consume everything.
    StopWatch watch;
    while (server.value()->bytes_drained() < payload.size() &&
           watch.elapsed_ms() < 5000) {
    }
    EXPECT_EQ(server.value()->bytes_drained(), payload.size());
  }
  server.value()->stop();
}

TEST(InMemory, BlockingRead) {
  auto [a, b] = make_inmemory_transports();
  std::string received;
  std::thread reader([&] { received = recv_all(*b); });
  ASSERT_TRUE(a->send("x").ok());
  ASSERT_TRUE(a->send("y").ok());
  a->shutdown_send();
  reader.join();
  EXPECT_EQ(received, "xy");
}

TEST(SimulatedWire, AddsProportionalDelay) {
  auto [a, b] = make_inmemory_transports();
  // 8 Mbit/s: 10 KB should take ~10 ms.
  auto wire = std::make_unique<SimulatedWireTransport>(std::move(a), 8e6);
  std::thread reader([t = std::move(b)]() mutable { recv_all(*t); });
  const std::string payload(10000, 'w');
  StopWatch watch;
  ASSERT_TRUE(wire->send(payload).ok());
  const double elapsed = watch.elapsed_ms();
  wire->shutdown_send();
  reader.join();
  EXPECT_GE(elapsed, 9.0);
  EXPECT_LT(elapsed, 100.0);
}

TEST(Zerocopy, UnixSocketpairFallsBackToPlainWritev) {
  // AF_UNIX sockets reject SO_ZEROCOPY (EOPNOTSUPP): arming must fail
  // cleanly and leave the transport on the ordinary writev path, with a
  // large gathered send still arriving byte-exact.
  auto pair = make_socketpair_transports();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = pair.value();
  auto* sock = dynamic_cast<SocketTransport*>(a.get());
  ASSERT_NE(sock, nullptr);
  EXPECT_FALSE(sock->enable_zerocopy());
  EXPECT_FALSE(sock->zerocopy_enabled());

  std::vector<std::string> pieces;
  std::string expected;
  for (int i = 0; i < 8; ++i) {
    pieces.push_back(std::string(8 * 1024, static_cast<char>('a' + i)));
    expected += pieces.back();
  }
  std::vector<ConstSlice> slices;
  for (const std::string& p : pieces) {
    slices.push_back(ConstSlice{p.data(), p.size()});
  }
  ASSERT_GE(expected.size(), kZeroCopyMinBytes);

  std::string received;
  std::thread reader([&] { received = recv_all(*b); });
  ASSERT_TRUE(a->send_slices(slices).ok());
  a->shutdown_send();
  reader.join();
  EXPECT_EQ(received, expected);
}

TEST(Zerocopy, TcpLargeGatherSafeToMutateAfterSend) {
  // The MSG_ZEROCOPY contract this codebase relies on: send_slices() must
  // not return until the kernel is done with the caller's pages, because
  // the caller is a message template that rewrites those bytes on the very
  // next request. Send a multi-buffer payload, scribble over the source
  // buffers the moment send_slices returns, and require the receiver to
  // still observe the original bytes. Holds whether the kernel granted
  // zerocopy or the transport fell back to copying writev.
  Result<TcpListener> listener = TcpListener::bind();
  ASSERT_TRUE(listener.ok());

  std::string received;
  std::thread server([&] {
    Result<std::unique_ptr<Transport>> conn = listener.value().accept();
    ASSERT_TRUE(conn.ok());
    received = recv_all(*conn.value());
  });

  Result<std::unique_ptr<Transport>> client =
      tcp_connect(listener.value().port());
  ASSERT_TRUE(client.ok());
  auto* sock = dynamic_cast<SocketTransport*>(client.value().get());
  ASSERT_NE(sock, nullptr);
  const bool armed = sock->enable_zerocopy();  // kernel-dependent; both paths valid
  EXPECT_EQ(sock->zerocopy_enabled(), armed);

  std::vector<std::string> pieces;
  std::string expected;
  for (int i = 0; i < 6; ++i) {
    pieces.push_back(std::string(200 * 1024, static_cast<char>('0' + i)));
    expected += pieces.back();
  }
  std::vector<ConstSlice> slices;
  for (const std::string& p : pieces) {
    slices.push_back(ConstSlice{p.data(), p.size()});
  }
  ASSERT_TRUE(client.value()->send_slices(slices).ok());
  // Simulate the template's next differential update touching every byte.
  for (std::string& p : pieces) {
    std::fill(p.begin(), p.end(), '!');
  }
  client.value()->shutdown_send();
  server.join();
  EXPECT_EQ(received.size(), expected.size());
  EXPECT_EQ(received, expected);
}

TEST(PaperSocketOptions, Applied) {
  auto pair = make_socketpair_transports();
  ASSERT_TRUE(pair.ok());
  // Options applied without error — verified indirectly by the factory
  // succeeding; TCP_NODELAY on AF_UNIX is intentionally ignored.
  SUCCEED();
}

}  // namespace
}  // namespace bsoap::net
