// Tests for the pipelined overlay sender: double-buffered windows must
// produce byte-streams that decode to exactly the input arrays, across
// window boundaries and repeated sends.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "core/pipelined_overlay.hpp"
#include "http/connection.hpp"
#include "net/inmemory.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/workload.hpp"

namespace bsoap::core {
namespace {

using soap::RpcCall;

Result<RpcCall> receive(net::Transport& transport) {
  http::HttpConnection connection(transport);
  Result<http::HttpRequest> request = connection.read_request();
  if (!request.ok()) return request.error();
  if (request.value().find("Transfer-Encoding") == nullptr) {
    return Error{ErrorCode::kProtocolError, "expected chunked request"};
  }
  return soap::read_rpc_envelope(request.value().body);
}

TEST(PipelinedOverlay, DoubleArraySingleWindow) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  PipelinedOverlaySender sender(*client_t, PipelinedOverlayConfig{});
  const auto values = soap::random_doubles(100, 1);

  Result<RpcCall> received(Error{ErrorCode::kInternal, "unset"});
  std::thread server([&] { received = receive(*server_t); });
  Result<std::size_t> sent =
      sender.send_double_array("sendData", "urn:b", "data", values);
  ASSERT_TRUE(sent.ok()) << sent.error().to_string();
  server.join();

  ASSERT_TRUE(received.ok()) << received.error().to_string();
  const auto& got = received.value().params[0].value.doubles();
  ASSERT_EQ(got.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&got[i], &values[i], sizeof(double)), 0) << i;
  }
}

TEST(PipelinedOverlay, ManyWindowsOverlapFilling) {
  PipelinedOverlayConfig config;
  config.chunk_bytes = 512;  // tiny windows: many handoffs between buffers
  auto [client_t, server_t] = net::make_inmemory_transports();
  PipelinedOverlaySender sender(*client_t, config);

  const auto values = soap::random_doubles(3000, 2);
  Result<RpcCall> received(Error{ErrorCode::kInternal, "unset"});
  std::thread server([&] { received = receive(*server_t); });
  ASSERT_TRUE(
      sender.send_double_array("sendData", "urn:b", "data", values).ok());
  server.join();

  ASSERT_TRUE(received.ok()) << received.error().to_string();
  EXPECT_EQ(received.value().params[0].value.doubles(), values);
}

TEST(PipelinedOverlay, MioArray) {
  PipelinedOverlayConfig config;
  config.chunk_bytes = 1024;
  auto [client_t, server_t] = net::make_inmemory_transports();
  PipelinedOverlaySender sender(*client_t, config);

  const auto values = soap::random_mios(500, 3);
  Result<RpcCall> received(Error{ErrorCode::kInternal, "unset"});
  std::thread server([&] { received = receive(*server_t); });
  ASSERT_TRUE(sender.send_mio_array("sendData", "urn:b", "data", values).ok());
  server.join();

  ASSERT_TRUE(received.ok()) << received.error().to_string();
  EXPECT_EQ(received.value().params[0].value.mios(), values);
}

TEST(PipelinedOverlay, RepeatedSendsReuseWindows) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  PipelinedOverlaySender sender(*client_t, PipelinedOverlayConfig{});

  for (int round = 0; round < 4; ++round) {
    const auto values =
        soap::random_doubles(300, 10 + static_cast<std::uint64_t>(round));
    Result<RpcCall> received(Error{ErrorCode::kInternal, "unset"});
    std::thread server([&] { received = receive(*server_t); });
    ASSERT_TRUE(
        sender.send_double_array("sendData", "urn:b", "data", values).ok());
    server.join();
    ASSERT_TRUE(received.ok()) << "round " << round;
    EXPECT_EQ(received.value().params[0].value.doubles(), values);
  }
}

TEST(PipelinedOverlay, SendErrorSurfacesOnDrain) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  PipelinedOverlaySender sender(*client_t, PipelinedOverlayConfig{});
  // Close both ends: sends fail, drain must report rather than hang.
  server_t->shutdown_both();
  client_t->shutdown_both();
  const auto values = soap::random_doubles(10, 4);
  Result<std::size_t> sent =
      sender.send_double_array("sendData", "urn:b", "data", values);
  EXPECT_FALSE(sent.ok());
}

}  // namespace
}  // namespace bsoap::core
