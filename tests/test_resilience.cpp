// Client resilience tests: retry policy backoff, connection pool checkout /
// reuse / liveness-reconnect, deterministic fault injection, and — the core
// of the layer — template-state recovery: a send that fails mid-write and
// retries on a fresh connection produces wire bytes identical to a send that
// never failed, and the template keeps matching differentially afterwards.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/client.hpp"
#include "http/connection.hpp"
#include "net/connection_pool.hpp"
#include "net/fault_injection.hpp"
#include "net/inmemory.hpp"
#include "net/tcp.hpp"
#include "resilience/retry_policy.hpp"
#include "server/server_runtime.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/workload.hpp"

namespace bsoap::core {
namespace {

using namespace std::chrono_literals;
using soap::RpcCall;
using soap::Value;

/// Reads a peer's raw bytes until end of stream (the writer must be
/// destroyed or shut down first).
std::string drain_raw(net::Transport& transport) {
  std::string out;
  char buf[4096];
  for (;;) {
    Result<std::size_t> got = transport.recv(buf, sizeof(buf));
    if (!got.ok() || got.value() == 0) break;
    out.append(buf, got.value());
  }
  return out;
}

/// Parses the HTTP requests a server-side transport received.
struct CapturingServer {
  explicit CapturingServer(net::Transport& transport)
      : connection(transport) {}

  Result<RpcCall> next_call() {
    Result<http::HttpRequest> request = connection.read_request();
    if (!request.ok()) return request.error();
    return soap::read_rpc_envelope(request.value().body);
  }

  http::HttpConnection connection;
};

/// A dialable in-memory endpoint: every dial creates a fresh pipe pair and
/// keeps the server end for inspection. `plan_for` (dial index, 0-based)
/// wraps the connection in fault injection; a default FaultPlan is clean.
struct InMemoryEndpoint {
  std::vector<std::unique_ptr<net::Transport>> server_ends;
  std::function<net::FaultPlan(std::size_t)> plan_for;
  std::size_t dials = 0;

  net::Dialer dialer() {
    return [this]() -> Result<std::unique_ptr<net::Transport>> {
      auto [client_end, server_end] = net::make_inmemory_transports();
      server_ends.push_back(std::move(server_end));
      const std::size_t index = dials++;
      std::unique_ptr<net::Transport> out = std::move(client_end);
      if (plan_for) {
        out = std::make_unique<net::FaultInjectingTransport>(std::move(out),
                                                             plan_for(index));
      }
      return out;
    };
  }
};

/// Fast, deterministic retry policy for tests.
resilience::RetryPolicy fast_retry(std::uint32_t attempts) {
  return resilience::RetryPolicy{}
      .with_max_attempts(attempts)
      .with_initial_backoff(1ms)
      .with_jitter(false);
}

// --- RetryPolicy ----------------------------------------------------------

TEST(RetryPolicy, BackoffIsExponentialAndCappedWithoutJitter) {
  resilience::RetryPolicy policy = resilience::RetryPolicy{}
                                       .with_initial_backoff(10ms)
                                       .with_multiplier(2.0)
                                       .with_max_backoff(50ms)
                                       .with_jitter(false);
  Rng rng(1);
  EXPECT_EQ(policy.backoff_for(1, rng), 10ms);
  EXPECT_EQ(policy.backoff_for(2, rng), 20ms);
  EXPECT_EQ(policy.backoff_for(3, rng), 40ms);
  EXPECT_EQ(policy.backoff_for(4, rng), 50ms);  // capped
  EXPECT_EQ(policy.backoff_for(10, rng), 50ms);
}

TEST(RetryPolicy, JitterStaysWithinEqualJitterBounds) {
  resilience::RetryPolicy policy =
      resilience::RetryPolicy{}.with_initial_backoff(100ms).with_jitter(true);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const auto delay = policy.backoff_for(1, rng);
    EXPECT_GE(delay, 50ms);
    EXPECT_LE(delay, 100ms);
  }
}

TEST(RetryPolicy, DefaultRetryableSet) {
  EXPECT_TRUE(resilience::default_retryable(ErrorCode::kIoError));
  EXPECT_TRUE(resilience::default_retryable(ErrorCode::kClosed));
  EXPECT_TRUE(resilience::default_retryable(ErrorCode::kTimeout));
  EXPECT_TRUE(resilience::default_retryable(ErrorCode::kUnavailable));
  EXPECT_FALSE(resilience::default_retryable(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(resilience::default_retryable(ErrorCode::kProtocolError));
  EXPECT_FALSE(resilience::default_retryable(ErrorCode::kParseError));
  EXPECT_FALSE(resilience::default_retryable(ErrorCode::kRetryExhausted));
}

TEST(RetryPolicy, NewErrorCodesHaveNames) {
  EXPECT_STREQ(error_code_name(ErrorCode::kUnavailable), "kUnavailable");
  EXPECT_STREQ(error_code_name(ErrorCode::kRetryExhausted),
               "kRetryExhausted");
}

// --- FaultInjectingTransport ----------------------------------------------

TEST(FaultInjection, CutsAfterExactlyNBytesThenReportsClosed) {
  auto [client_end, server_end] = net::make_inmemory_transports();
  net::FaultPlan plan;
  plan.fail_after_bytes = 10;
  net::FaultInjectingTransport faulty(std::move(client_end), plan);

  const char payload[] = "0123456789abcdefghij";  // 20 bytes
  Status cut = faulty.send(payload, 20);
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.error().code, ErrorCode::kIoError);
  EXPECT_EQ(faulty.bytes_forwarded(), 10u);
  EXPECT_TRUE(faulty.broken());

  Status after = faulty.send(payload, 1);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.error().code, ErrorCode::kClosed);

  EXPECT_EQ(drain_raw(*server_end), "0123456789");
}

TEST(FaultInjection, DialRefusalIsUnavailable) {
  InMemoryEndpoint endpoint;
  net::FaultPlan plan;
  plan.connect_refusal_rate = 1.0;
  net::Dialer dial = net::faulty_dialer(endpoint.dialer(), plan);
  Result<std::unique_ptr<net::Transport>> conn = dial();
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, ErrorCode::kUnavailable);
}

// --- ConnectionPool -------------------------------------------------------

TEST(ConnectionPool, FixedPoolCirculatesItsSeededConnection) {
  auto [client_end, server_end] = net::make_inmemory_transports();
  net::ConnectionPool pool(
      net::ConnectionPool::Options{/*max_idle=*/1, /*dial=*/nullptr});
  ASSERT_TRUE(pool.fixed());
  pool.add(std::move(client_end));

  Result<net::ConnectionPool::Lease> lease = pool.checkout();
  ASSERT_TRUE(lease.ok());
  // Fixed pool with its one connection out: checkout fails, no dial.
  Result<net::ConnectionPool::Lease> second = pool.checkout();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, ErrorCode::kUnavailable);

  // Even a discard returns the connection (legacy single-transport flow).
  lease.value().discard();
  EXPECT_TRUE(pool.checkout().ok());
  EXPECT_EQ(pool.stats().dials, 0u);
}

TEST(ConnectionPool, DialsOnDemandAndReusesIdle) {
  InMemoryEndpoint endpoint;
  net::ConnectionPool pool(
      net::ConnectionPool::Options{/*max_idle=*/2, endpoint.dialer()});
  ASSERT_FALSE(pool.fixed());

  Result<net::ConnectionPool::Lease> lease = pool.checkout();
  ASSERT_TRUE(lease.ok());
  lease.value().checkin();
  Result<net::ConnectionPool::Lease> again = pool.checkout();
  ASSERT_TRUE(again.ok());
  again.value().checkin();

  const net::ConnectionPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.dials, 1u);
  EXPECT_EQ(stats.reuses, 1u);
}

TEST(ConnectionPool, DiscardedConnectionsAreNotReused) {
  InMemoryEndpoint endpoint;
  net::ConnectionPool pool(
      net::ConnectionPool::Options{/*max_idle=*/2, endpoint.dialer()});
  Result<net::ConnectionPool::Lease> lease = pool.checkout();
  ASSERT_TRUE(lease.ok());
  lease.value().discard();
  EXPECT_EQ(pool.idle_count(), 0u);
  Result<net::ConnectionPool::Lease> fresh = pool.checkout();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(pool.stats().dials, 2u);
  EXPECT_EQ(pool.stats().discards, 1u);
  fresh.value().checkin();
}

// --- Template-state recovery ----------------------------------------------

/// Measures the wire size of a first-time send of `call` over a clean
/// pooled client (used to place byte-exact fault cuts).
std::size_t measure_first_send_bytes(const RpcCall& call) {
  InMemoryEndpoint endpoint;
  BsoapClient client(endpoint.dialer(), BsoapClientConfig{});
  Result<SendReport> report = client.send_call(call);
  EXPECT_TRUE(report.ok());
  return report.value().wire_bytes;
}

TEST(TemplateRecovery, RetriedDiffSendMatchesUnfailedWireBytes) {
  auto values = soap::doubles_with_serialized_length(60, 18, 11);
  const RpcCall call_a = soap::make_double_array_call(values);
  values[9] = soap::doubles_with_serialized_length(1, 18, 12)[0];
  values[41] = soap::doubles_with_serialized_length(1, 18, 13)[0];
  const RpcCall call_b = soap::make_double_array_call(values);

  // Reference: the same two sends with no failure, over one connection.
  std::string reference_b;
  std::size_t wire_a = 0;
  {
    InMemoryEndpoint endpoint;
    auto client = std::make_unique<BsoapClient>(endpoint.dialer(),
                                                BsoapClientConfig{});
    Result<SendReport> first = client->send_call(call_a);
    ASSERT_TRUE(first.ok());
    wire_a = first.value().wire_bytes;
    Result<SendReport> second = client->send_call(call_b);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value().match, MatchKind::kPerfectStructural);
    client.reset();  // close the pooled connection so drain terminates
    ASSERT_EQ(endpoint.server_ends.size(), 1u);
    const std::string raw = drain_raw(*endpoint.server_ends[0]);
    ASSERT_EQ(raw.size(), wire_a + second.value().wire_bytes);
    reference_b = raw.substr(wire_a);
  }

  // Faulty run: connection 0 drops exactly 16 bytes into send B; the retry
  // dials connection 1 and must put byte-identical B on the wire.
  {
    InMemoryEndpoint endpoint;
    endpoint.plan_for = [&](std::size_t index) {
      net::FaultPlan plan;
      if (index == 0) plan.fail_after_bytes = wire_a + 16;
      return plan;
    };
    auto client = std::make_unique<BsoapClient>(
        endpoint.dialer(),
        BsoapClientConfig{}.with_retry(fast_retry(3)));
    ASSERT_TRUE(client->send_call(call_a).ok());
    Result<SendReport> retried = client->send_call(call_b);
    ASSERT_TRUE(retried.ok());
    EXPECT_EQ(retried.value().attempts, 2u);
    EXPECT_EQ(retried.value().recovery, Recovery::kRolledBack);
    EXPECT_EQ(retried.value().match, MatchKind::kPerfectStructural);

    // The acceptance bar: after recovery the template still matches
    // differentially — an unchanged resend is a content match.
    Result<SendReport> unchanged = client->send_call(call_b);
    ASSERT_TRUE(unchanged.ok());
    EXPECT_EQ(unchanged.value().match, MatchKind::kContentMatch);
    EXPECT_EQ(unchanged.value().attempts, 1u);

    client.reset();
    ASSERT_EQ(endpoint.server_ends.size(), 2u);
    // Connection 0 carries A plus exactly the 16 bytes before the cut.
    EXPECT_EQ(drain_raw(*endpoint.server_ends[0]).size(), wire_a + 16);
    // Connection 1 carries the retried B, then the content-match resend.
    const std::string raw = drain_raw(*endpoint.server_ends[1]);
    ASSERT_GE(raw.size(), reference_b.size());
    EXPECT_EQ(raw.substr(0, reference_b.size()), reference_b);
    EXPECT_EQ(raw.substr(reference_b.size()), reference_b);
  }
}

TEST(TemplateRecovery, ExhaustedRetriesRollBackToExactPriorState) {
  auto values = soap::doubles_with_serialized_length(40, 18, 21);
  const RpcCall call_a = soap::make_double_array_call(values);
  values[3] = soap::doubles_with_serialized_length(1, 18, 22)[0];
  const RpcCall call_b = soap::make_double_array_call(values);
  const std::size_t wire_a = measure_first_send_bytes(call_a);

  InMemoryEndpoint endpoint;
  endpoint.plan_for = [&](std::size_t index) {
    net::FaultPlan plan;
    if (index == 0) {
      plan.fail_after_bytes = wire_a + 8;  // A fits; B is cut
    } else if (index <= 2) {
      plan.fail_after_bytes = 32;  // retries die in the HTTP head
    }
    return plan;  // connections 3+ are clean
  };
  BsoapClient client(endpoint.dialer(),
                     BsoapClientConfig{}.with_retry(fast_retry(3)));
  ASSERT_TRUE(client.send_call(call_a).ok());

  Result<SendReport> failed = client.send_call(call_b);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code, ErrorCode::kRetryExhausted);
  EXPECT_EQ(client.pool().stats().dials, 3u);

  // Every attempt rolled the template back, so resending the ORIGINAL
  // values is a content match with zero rewrites: shadows, buffer bytes,
  // and stats all match the pre-failure state exactly.
  Result<SendReport> original = client.send_call(call_a);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(original.value().match, MatchKind::kContentMatch);
  EXPECT_EQ(original.value().update.values_rewritten, 0u);

  CapturingServer server(*endpoint.server_ends[3]);
  Result<RpcCall> received = server.next_call();
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received.value().params[0].value == call_a.params[0].value);
}

TEST(TemplateRecovery, StructuralFailureInvalidatesAndRetriesFirstTime) {
  // B grows one value from 6 to 18 serialized chars: the update expands the
  // field, which cannot be rolled back — recovery must invalidate.
  auto values = soap::doubles_with_serialized_length(20, 6, 31);
  const RpcCall call_a = soap::make_double_array_call(values);
  values[5] = soap::doubles_with_serialized_length(1, 18, 32)[0];
  const RpcCall call_b = soap::make_double_array_call(values);
  const std::size_t wire_a = measure_first_send_bytes(call_a);

  InMemoryEndpoint endpoint;
  endpoint.plan_for = [&](std::size_t index) {
    net::FaultPlan plan;
    if (index == 0) plan.fail_after_bytes = wire_a + 8;
    return plan;
  };
  BsoapClient client(endpoint.dialer(),
                     BsoapClientConfig{}.with_retry(fast_retry(3)));
  ASSERT_TRUE(client.send_call(call_a).ok());

  Result<SendReport> retried = client.send_call(call_b);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value().attempts, 2u);
  EXPECT_EQ(retried.value().recovery, Recovery::kInvalidated);
  EXPECT_EQ(retried.value().match, MatchKind::kFirstTime);
  EXPECT_EQ(client.store().invalidations(), 1u);

  CapturingServer server(*endpoint.server_ends[1]);
  Result<RpcCall> received = server.next_call();
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received.value().params[0].value == call_b.params[0].value);
}

TEST(TemplateRecovery, FirstTimeSendFailureErasesTheStoredTemplate) {
  const RpcCall call =
      soap::make_double_array_call(soap::random_doubles(30, 41));
  InMemoryEndpoint endpoint;
  endpoint.plan_for = [](std::size_t index) {
    net::FaultPlan plan;
    if (index == 0) plan.fail_after_bytes = 32;
    return plan;
  };
  BsoapClient client(endpoint.dialer(),
                     BsoapClientConfig{}.with_retry(fast_retry(3)));

  // The first-time send fails mid-write; the half-born template is erased
  // and the retry is itself a clean first-time send.
  Result<SendReport> report = client.send_call(call);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().attempts, 2u);
  EXPECT_EQ(report.value().recovery, Recovery::kInvalidated);
  EXPECT_EQ(report.value().match, MatchKind::kFirstTime);

  // And the template it left behind is healthy: unchanged resend matches.
  Result<SendReport> unchanged = client.send_call(call);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(unchanged.value().match, MatchKind::kContentMatch);
}

TEST(TemplateRecovery, TrackedMessageRollsBackToStillDirtyOnSingleAttempt) {
  // Legacy single-transport client: one attempt, no retry. A failed tracked
  // send must leave the changed field dirty (rolled back, not half-sent).
  auto values = soap::doubles_with_serialized_length(25, 18, 51);
  const RpcCall probe_call = soap::make_double_array_call(values);
  const std::size_t wire_first = measure_first_send_bytes(probe_call);

  auto [client_end, server_end] = net::make_inmemory_transports();
  net::FaultPlan plan;
  plan.fail_after_bytes = wire_first + 8;
  net::FaultInjectingTransport faulty(std::move(client_end), plan);
  BsoapClient client(faulty);

  std::unique_ptr<BoundMessage> message =
      client.bind(soap::make_double_array_call(values));
  ASSERT_TRUE(message->send().ok());
  EXPECT_EQ(message->dirty_count(), 0u);

  message->set_double_element(0, 7,
                              soap::doubles_with_serialized_length(1, 18, 52)[0]);
  EXPECT_EQ(message->dirty_count(), 1u);
  Result<SendReport> failed = message->send();
  ASSERT_FALSE(failed.ok());
  // Single attempt: the underlying error surfaces, not kRetryExhausted.
  EXPECT_EQ(failed.error().code, ErrorCode::kIoError);
  EXPECT_EQ(message->dirty_count(), 1u);  // rolled back to still-dirty
}

TEST(TemplateRecovery, TrackedMessageRebuildsAfterStructuralFailure) {
  auto values = soap::doubles_with_serialized_length(20, 6, 61);
  const RpcCall probe_call = soap::make_double_array_call(values);
  const std::size_t wire_first = measure_first_send_bytes(probe_call);

  InMemoryEndpoint endpoint;
  endpoint.plan_for = [&](std::size_t index) {
    net::FaultPlan plan;
    if (index == 0) plan.fail_after_bytes = wire_first + 8;
    return plan;
  };
  BsoapClient client(endpoint.dialer(),
                     BsoapClientConfig{}.with_retry(fast_retry(3)));
  std::unique_ptr<BoundMessage> message =
      client.bind(soap::make_double_array_call(values));
  ASSERT_TRUE(message->send().ok());

  // Expanding update (6 -> 18 chars) + mid-write failure: rollback is
  // refused, the template is rebuilt in place, the retry sends first-time.
  const double wide = soap::doubles_with_serialized_length(1, 18, 62)[0];
  message->set_double_element(0, 5, wide);
  Result<SendReport> retried = message->send();
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.value().attempts, 2u);
  EXPECT_EQ(retried.value().recovery, Recovery::kInvalidated);
  EXPECT_EQ(retried.value().match, MatchKind::kFirstTime);
  EXPECT_EQ(message->dirty_count(), 0u);

  // The rebuilt template is live: an unchanged send is a content match and
  // the server sees the expanded value.
  Result<SendReport> unchanged = message->send();
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(unchanged.value().match, MatchKind::kContentMatch);

  CapturingServer server(*endpoint.server_ends[1]);
  Result<RpcCall> received = server.next_call();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().params[0].value.doubles()[5], wide);
}

TEST(ResilientClient, NonRetryableErrorFailsFast) {
  InMemoryEndpoint endpoint;
  endpoint.plan_for = [](std::size_t) {
    net::FaultPlan plan;
    plan.fail_after_bytes = 16;
    return plan;
  };
  BsoapClient client(
      endpoint.dialer(),
      BsoapClientConfig{}.with_retry(
          fast_retry(5).with_retryable([](ErrorCode) { return false; })));
  Result<SendReport> report =
      client.send_call(soap::make_double_array_call(soap::random_doubles(10, 71)));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kIoError);  // not wrapped
  EXPECT_EQ(client.pool().stats().dials, 1u);           // not retried
}

TEST(ResilientClient, RefusedDialsAreRetriedThenExhausted) {
  InMemoryEndpoint endpoint;
  net::FaultPlan plan;
  plan.connect_refusal_rate = 1.0;
  BsoapClient client(net::faulty_dialer(endpoint.dialer(), plan),
                     BsoapClientConfig{}.with_retry(fast_retry(3)));
  Result<SendReport> report =
      client.send_call(soap::make_double_array_call(soap::random_doubles(10, 72)));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kRetryExhausted);
}

// --- Pool + server runtime ------------------------------------------------

Result<Value> sum_handler(const RpcCall& call) {
  double total = 0;
  for (const double v : call.params[0].value.doubles()) total += v;
  return Value::from_double(total);
}

RpcCall make_sum_call(std::vector<double> values) {
  RpcCall call;
  call.method = "sum";
  call.service_namespace = "urn:calc";
  call.params.push_back(
      soap::Param{"data", Value::from_double_array(std::move(values))});
  return call;
}

TEST(ResilientClient, ReusesKeepAliveAndReconnectsAfterServerIdleClose) {
  server::ServerRuntimeOptions options;
  options.workers = 1;
  options.idle_timeout = 100ms;
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());
  const std::uint16_t port = server.value()->port();

  BsoapClient client([port] { return net::tcp_connect(port); },
                     BsoapClientConfig{}.with_retry(fast_retry(3)));

  Result<Value> first = client.invoke(make_sum_call({1.0, 2.0, 3.0}));
  ASSERT_TRUE(first.ok());
  EXPECT_DOUBLE_EQ(first.value().as_double(), 6.0);
  EXPECT_EQ(client.pool().stats().dials, 1u);

  // Immediate second call: the idle keep-alive connection is reused.
  Result<Value> second = client.invoke(make_sum_call({1.0, 2.0, 4.0}));
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second.value().as_double(), 7.0);
  EXPECT_EQ(client.pool().stats().dials, 1u);
  EXPECT_GE(client.pool().stats().reuses, 1u);

  // Wait past the server's idle timeout: it closes the connection. The
  // pool's liveness probe sees the close and checkout reconnects.
  std::this_thread::sleep_for(400ms);
  Result<Value> third = client.invoke(make_sum_call({2.0, 2.0, 4.0}));
  ASSERT_TRUE(third.ok());
  EXPECT_DOUBLE_EQ(third.value().as_double(), 8.0);
  EXPECT_EQ(client.pool().stats().dials, 2u);
  EXPECT_GE(client.pool().stats().liveness_closes, 1u);
}

}  // namespace
}  // namespace bsoap::core
