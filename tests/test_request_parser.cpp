// RequestParser unit tests: the resumable request parser must produce the
// same request no matter where the input is split — whole-message, one byte
// at a time, and at every single byte boundary — because the reactor feeds
// it whatever each readiness-driven read happens to drain.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "http/request_parser.hpp"

namespace bsoap::http {
namespace {

std::string request_with_content_length(const std::string& body) {
  std::string text = "POST /calc HTTP/1.1\r\n";
  text += "Host: localhost\r\n";
  text += "Content-Type: text/xml; charset=utf-8\r\n";
  text += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  text += "\r\n";
  text += body;
  return text;
}

std::string request_with_chunked_body(const std::vector<std::string>& chunks) {
  std::string text = "POST /calc HTTP/1.1\r\n";
  text += "Host: localhost\r\n";
  text += "Transfer-Encoding: chunked\r\n";
  text += "\r\n";
  char size_hex[32];
  for (const std::string& chunk : chunks) {
    std::snprintf(size_hex, sizeof(size_hex), "%zx", chunk.size());
    text += size_hex;
    text += "\r\n";
    text += chunk;
    text += "\r\n";
  }
  text += "0\r\n\r\n";
  return text;
}

/// Feeds `wire` split into [0, split) and [split, end), expecting exactly
/// one complete request out the other side.
HttpRequest parse_split(const std::string& wire, std::size_t split) {
  RequestParser parser;
  Status first = parser.feed(wire.data(), split);
  EXPECT_TRUE(first.ok()) << first.error().to_string();
  Status second = parser.feed(wire.data() + split, wire.size() - split);
  EXPECT_TRUE(second.ok()) << second.error().to_string();
  EXPECT_TRUE(parser.done()) << "split at " << split;
  return parser.take();
}

TEST(RequestParser, WholeMessageInOneFeed) {
  const std::string wire = request_with_content_length("<x>42</x>");
  RequestParser parser;
  EXPECT_FALSE(parser.started());
  ASSERT_TRUE(parser.feed(wire.data(), wire.size()).ok());
  ASSERT_TRUE(parser.done());
  HttpRequest request = parser.take();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/calc");
  EXPECT_EQ(request.body, "<x>42</x>");
  // take() re-arms for the next request on the connection.
  EXPECT_EQ(parser.state(), RequestParser::State::kHead);
  EXPECT_FALSE(parser.started());
}

TEST(RequestParser, SplitAtEveryByteBoundary) {
  const std::string wire = request_with_content_length("<sum>1.5 2.5</sum>");
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    HttpRequest request = parse_split(wire, split);
    EXPECT_EQ(request.method, "POST") << "split at " << split;
    EXPECT_EQ(request.body, "<sum>1.5 2.5</sum>") << "split at " << split;
  }
}

TEST(RequestParser, ChunkedBodySplitAtEveryByteBoundary) {
  const std::string wire =
      request_with_chunked_body({"<sum>", "1.5 ", "2.5", "</sum>"});
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    HttpRequest request = parse_split(wire, split);
    EXPECT_EQ(request.body, "<sum>1.5 2.5</sum>") << "split at " << split;
  }
}

TEST(RequestParser, OneByteAtATime) {
  const std::string wire = request_with_content_length("<v>7</v>");
  RequestParser parser;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_FALSE(parser.done()) << "done early at byte " << i;
    ASSERT_TRUE(parser.feed(wire.data() + i, 1).ok());
    if (i > 0) {
      EXPECT_TRUE(parser.started());
    }
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.take().body, "<v>7</v>");
}

TEST(RequestParser, PipelinedRequestsParseInSequence) {
  const std::string first = request_with_content_length("<a/>");
  const std::string second = request_with_content_length("<b/>");
  const std::string wire = first + second;

  RequestParser parser;
  ASSERT_TRUE(parser.feed(wire.data(), wire.size()).ok());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.take().body, "<a/>");
  // The second request is buffered but deliberately unparsed until resume():
  // an error in it must surface on the *next* read cycle, not on take().
  EXPECT_FALSE(parser.done());
  ASSERT_TRUE(parser.resume().ok());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.take().body, "<b/>");
}

TEST(RequestParser, EofErrorsMatchConnectionState) {
  // Clean end between requests: the keep-alive just ended.
  RequestParser between;
  EXPECT_EQ(between.eof_error().code, ErrorCode::kClosed);

  // Mid-head: the peer hung up inside the request line/headers.
  RequestParser mid_head;
  ASSERT_TRUE(mid_head.feed("POST / HT", 9).ok());
  EXPECT_TRUE(mid_head.started());
  EXPECT_EQ(mid_head.eof_error().code, ErrorCode::kProtocolError);

  // Mid-body: head complete, body truncated.
  const std::string wire = request_with_content_length("<x>42</x>");
  RequestParser mid_body;
  ASSERT_TRUE(mid_body.feed(wire.data(), wire.size() - 3).ok());
  EXPECT_EQ(mid_body.state(), RequestParser::State::kBody);
  const Error eof = mid_body.eof_error();
  EXPECT_EQ(eof.code, ErrorCode::kClosed);
  EXPECT_EQ(eof.message, "connection closed mid-message");
}

TEST(RequestParser, BadContentLengthIsAFeedError) {
  std::string text = "POST / HTTP/1.1\r\n";
  text += "Content-Length: banana\r\n\r\n";
  RequestParser parser;
  Status fed = parser.feed(text.data(), text.size());
  ASSERT_FALSE(fed.ok());
  EXPECT_EQ(fed.error().code, ErrorCode::kProtocolError);
}

TEST(RequestParser, NoFramingMeansEmptyBody) {
  // RFC 2616 4.3: a request without Content-Length or chunked encoding has
  // no body.
  const std::string text = "POST /ping HTTP/1.1\r\nHost: x\r\n\r\n";
  RequestParser parser;
  ASSERT_TRUE(parser.feed(text.data(), text.size()).ok());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.take().body, "");
}

}  // namespace
}  // namespace bsoap::http
