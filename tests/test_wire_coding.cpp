// Wire-compression layer tests: the ContentCoding API (token parsing,
// per-coding round trips, decompression bounds), preset-dictionary zlib
// streams (dictionary mismatch is a clean error, long dictionaries tail-
// truncate consistently on both sides), the send pipeline's preset coding of
// patch frames and full re-offers (decoded through ReplicaStore exactly as
// the server does), Accept-Encoding negotiation with byte-identical decoded
// responses on both engines, the 413 decompression-bomb bound, and
// end-to-end preset clients including NACK self-healing after replica loss.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "buffer/sinks.hpp"
#include "common/rng.hpp"
#include "compress/deflate.hpp"
#include "core/client.hpp"
#include "core/send_pipeline.hpp"
#include "diffwire/replica_store.hpp"
#include "diffwire/wire_format.hpp"
#include "http/connection.hpp"
#include "http/content_coding.hpp"
#include "http/request_parser.hpp"
#include "net/tcp.hpp"
#include "server/reactor.hpp"
#include "server/server_runtime.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"

namespace bsoap {
namespace {

using namespace std::chrono_literals;
using core::BsoapClient;
using core::BsoapClientConfig;
using http::ContentCoding;
using soap::RpcCall;
using soap::Value;

template <typename Pred>
bool wait_for(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

/// Stuffed numeric fields keep value rewrites in place — the structural
/// matches the patch path needs.
core::TemplateConfig stuffed_config() {
  core::TemplateConfig cfg;
  cfg.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
  cfg.stuffing.stuff_on_expand = true;
  return cfg;
}

Result<Value> sum_handler(const RpcCall& call) {
  double total = 0;
  for (const double v : call.params[0].value.doubles()) total += v;
  return Value::from_double(total);
}

double sum_of(const std::vector<double>& values) {
  double total = 0;
  for (const double v : values) total += v;
  return total;
}

net::Dialer tcp_dialer(std::uint16_t port) {
  return [port] { return net::tcp_connect(port); };
}

http::HttpRequest parse_bytewise(const std::string& wire) {
  http::RequestParser parser;
  for (const char c : wire) {
    const Status fed = parser.feed(&c, 1);
    EXPECT_TRUE(fed.ok()) << fed.error().to_string();
  }
  EXPECT_TRUE(parser.done());
  return parser.take();
}

std::pair<std::string, core::SendReport> capture_send(
    core::SendPipeline& pipeline, const RpcCall& call) {
  server::CaptureTransport capture;
  core::SendDestination dest;
  dest.transport = &capture;
  Result<core::SendReport> report = pipeline.send(call, dest);
  EXPECT_TRUE(report.ok()) << report.error().to_string();
  return {capture.take(), report.value()};
}

// --- ContentCoding API -----------------------------------------------------

TEST(ContentCodingApi, ParseCodingMatrix) {
  ContentCoding coding = ContentCoding::kIdentity;
  EXPECT_TRUE(http::parse_coding("gzip", &coding));
  EXPECT_EQ(coding, ContentCoding::kGzip);
  EXPECT_TRUE(http::parse_coding(" GZIP ", &coding));  // case + spaces
  EXPECT_EQ(coding, ContentCoding::kGzip);
  EXPECT_TRUE(http::parse_coding("deflate", &coding));
  EXPECT_EQ(coding, ContentCoding::kDeflate);
  EXPECT_TRUE(http::parse_coding("Deflate-Preset", &coding));
  EXPECT_EQ(coding, ContentCoding::kDeflatePreset);
  EXPECT_TRUE(http::parse_coding("identity", &coding));
  EXPECT_EQ(coding, ContentCoding::kIdentity);
  EXPECT_FALSE(http::parse_coding("br", &coding));
  EXPECT_FALSE(http::parse_coding("zstd", &coding));
  EXPECT_FALSE(http::parse_coding("", &coding));
}

TEST(ContentCodingApi, NamesAreTheWireTokens) {
  EXPECT_STREQ(http::coding_name(ContentCoding::kIdentity), "identity");
  EXPECT_STREQ(http::coding_name(ContentCoding::kGzip), "gzip");
  EXPECT_STREQ(http::coding_name(ContentCoding::kDeflate), "deflate");
  EXPECT_STREQ(http::coding_name(ContentCoding::kDeflatePreset),
               "deflate-preset");
  for (const ContentCoding c :
       {ContentCoding::kIdentity, ContentCoding::kGzip,
        ContentCoding::kDeflate, ContentCoding::kDeflatePreset}) {
    EXPECT_STREQ(http::coding_for(c).name(), http::coding_name(c));
  }
}

TEST(ContentCodingApi, GzipAndDeflateCodersRoundTrip) {
  std::string body;
  for (int i = 0; i < 400; ++i) body += "<item>2.5</item>";
  for (const ContentCoding c :
       {ContentCoding::kGzip, ContentCoding::kDeflate}) {
    const http::ContentCoder& coder = http::coding_for(c);
    const std::string coded = coder.encode(body);
    EXPECT_LT(coded.size(), body.size() / 4);
    Result<std::string> back = coder.decode(coded, 1u << 20);
    ASSERT_TRUE(back.ok()) << back.error().to_string();
    EXPECT_EQ(back.value(), body);
  }
}

TEST(ContentCodingApi, DecodeBoundIsOutOfRange) {
  const std::string body(1u << 20, 'z');
  for (const ContentCoding c :
       {ContentCoding::kGzip, ContentCoding::kDeflate}) {
    const http::ContentCoder& coder = http::coding_for(c);
    const std::string coded = coder.encode(body);
    Result<std::string> bounded = coder.decode(coded, 1024);
    ASSERT_FALSE(bounded.ok());
    EXPECT_EQ(bounded.error().code, ErrorCode::kOutOfRange);
    EXPECT_TRUE(coder.decode(coded, 1u << 21).ok());
  }
}

// --- preset dictionaries ---------------------------------------------------

TEST(PresetDictionary, NearIdenticalBodyCompressesToAlmostNothing) {
  buffer::StringSink sink;
  soap::write_rpc_envelope(
      sink, soap::make_double_array_call(
                soap::doubles_with_serialized_length(500, 17, 1)));
  const std::string generation1 = sink.take();
  std::string generation2 = generation1;
  generation2.replace(generation2.size() / 2, 5, "99999");

  const std::string plain = compress::zlib_compress(generation2);
  const std::string preset =
      compress::zlib_compress(generation2, /*dict=*/generation1);
  EXPECT_LT(preset.size(), generation2.size() / 10);
  EXPECT_LT(preset.size(), plain.size() / 4);

  Result<std::string> back =
      compress::zlib_decompress(preset, 1u << 20, generation1);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value(), generation2);
}

TEST(PresetDictionary, MismatchIsACleanError) {
  const std::string dict = "the dictionary both sides must hold";
  const std::string coded = compress::zlib_compress("payload bytes", dict);

  Result<std::string> wrong =
      compress::zlib_decompress(coded, 1u << 20, "a different dictionary");
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(wrong.error().to_string().find("dictionary mismatch"),
            std::string::npos);

  Result<std::string> missing = compress::zlib_decompress(coded, 1u << 20);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kInvalidArgument);

  // A stream without FDICT ignores any dictionary the caller passes.
  const std::string unkeyed = compress::zlib_compress("payload bytes");
  Result<std::string> ok =
      compress::zlib_decompress(unkeyed, 1u << 20, "irrelevant");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), "payload bytes");
}

TEST(PresetDictionary, LongDictionariesTailTruncateConsistently) {
  // Only the last 32 KiB can seed the LZ77 window. Both sides must truncate
  // identically or the DICTID check would reject the full-length dictionary.
  Rng rng(9);
  std::string dict;
  for (int i = 0; i < (48 << 10); ++i) {
    dict += static_cast<char>('a' + rng.next_below(20));
  }
  const std::string body = dict.substr(dict.size() - 2000) + "fresh tail";
  compress::DeflateStream stream;
  stream.preset(dict);
  EXPECT_EQ(stream.dictionary_id(),
            compress::adler32(std::string_view(dict).substr(
                dict.size() - (32 << 10))));
  const std::string coded = compress::zlib_compress(stream, body);
  EXPECT_LT(coded.size(), body.size() / 10);  // tail matches reach the dict

  Result<std::string> full_dict =
      compress::zlib_decompress(coded, 1u << 20, dict);
  ASSERT_TRUE(full_dict.ok()) << full_dict.error().to_string();
  EXPECT_EQ(full_dict.value(), body);
  Result<std::string> tail_only = compress::zlib_decompress(
      coded, 1u << 20, std::string_view(dict).substr(dict.size() - (32 << 10)));
  ASSERT_TRUE(tail_only.ok()) << tail_only.error().to_string();
  EXPECT_EQ(tail_only.value(), body);
}

TEST(PresetDictionary, PresetCoderRoundTrip) {
  const http::ContentCoder& coder =
      http::coding_for(ContentCoding::kDeflatePreset);
  std::string dict;
  for (int i = 0; i < 300; ++i) dict += "<field>value</field>";
  const std::string body = dict + "<field>fresh</field>";
  const std::string coded = coder.encode(body, dict);
  EXPECT_LT(coded.size(), body.size() / 10);
  Result<std::string> back = coder.decode(coded, 1u << 20, dict);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value(), body);
  EXPECT_FALSE(coder.decode(coded, 1u << 20, "wrong").ok());
}

// --- pipeline preset coding ------------------------------------------------

TEST(WireCodingPipeline, PresetPatchFramesCompressAndDecode) {
  core::SendPipeline::Options options;
  options.tmpl = stuffed_config();
  options.coding = ContentCoding::kDeflatePreset;
  core::SendPipeline pipeline(options);
  core::UpdateJournal journal;
  pipeline.set_journal(&journal);
  diffwire::ClientSession session(/*token=*/3);
  pipeline.set_diffwire(&session);

  core::SendPipeline::Options ref_options;
  ref_options.tmpl = stuffed_config();
  core::SendPipeline reference(ref_options);

  std::vector<double> values = soap::doubles_with_serialized_length(512, 17, 9);
  const RpcCall call1 = soap::make_double_array_call(values);
  const std::uint64_t wire_id = session.wire_id(call1.structure_signature());

  // First send: identity full body (no dictionary yet) that OFFERS preset
  // coding alongside the template.
  auto [wire1, report1] = capture_send(pipeline, call1);
  EXPECT_EQ(report1.coding, ContentCoding::kIdentity);
  http::HttpRequest offer = parse_bytewise(wire1);
  ASSERT_NE(offer.find(diffwire::kCodingHeader), nullptr);
  EXPECT_EQ(offer.find(diffwire::kCodingHeader)->value,
            diffwire::kCodingPresetValue);
  EXPECT_EQ(offer.find("Content-Encoding"), nullptr);
  auto [ref_wire1, ref_report1] = capture_send(reference, call1);
  EXPECT_EQ(offer.body, parse_bytewise(ref_wire1).body);

  // Receiver pins (retaining the pin generation's dictionary) and acks both
  // the template and the coding; the sender recorded its dictionary when the
  // offer write succeeded.
  diffwire::ReplicaStore::Options store_options;
  store_options.retain_dictionaries = true;
  diffwire::ReplicaStore store(store_options);
  store.pin(wire_id, offer.body);
  session.note_ack(wire_id);
  session.note_coding_ack(wire_id);
  ASSERT_TRUE(session.coding_ready(wire_id));

  // Shift a block of values around (same widths, bytes already present in
  // the dictionary): the patch frame's run data is pure dictionary matches.
  const std::vector<double> prev = values;
  for (std::size_t i = 0; i < 50; ++i) values[i] = prev[(i + 101) % 512];
  const RpcCall call2 = soap::make_double_array_call(values);
  auto [wire2, report2] = capture_send(pipeline, call2);
  EXPECT_TRUE(report2.patch_send);
  EXPECT_EQ(report2.coding, ContentCoding::kDeflatePreset);
  EXPECT_GT(report2.coding_bytes_saved, 0u);
  EXPECT_GT(report2.coding_ns, 0);

  http::HttpRequest patch = parse_bytewise(wire2);
  ASSERT_NE(patch.find("Content-Encoding"), nullptr);
  EXPECT_EQ(patch.find("Content-Encoding")->value,
            http::coding_name(ContentCoding::kDeflatePreset));
  // A coded frame's template ID is unreadable before decoding, so it rides
  // the header.
  std::uint64_t header_id = 0;
  ASSERT_NE(patch.find(diffwire::kTemplateHeader), nullptr);
  ASSERT_TRUE(diffwire::parse_template_id(
      patch.find(diffwire::kTemplateHeader)->value, &header_id));
  EXPECT_EQ(header_id, wire_id);

  // Server-side decode against the pin generation's dictionary, then apply.
  Result<std::string> frame_bytes =
      store.decode_preset(wire_id, patch.body, 1u << 20);
  ASSERT_TRUE(frame_bytes.ok()) << frame_bytes.error().to_string();
  EXPECT_LT(patch.body.size(), frame_bytes.value().size() / 2);
  Result<diffwire::PatchFrame> frame =
      diffwire::decode_patch(frame_bytes.value());
  ASSERT_TRUE(frame.ok()) << frame.error().to_string();
  std::string reconstructed;
  ASSERT_TRUE(store.apply(frame.value(), &reconstructed).ok());
  auto [ref_wire2, ref_report2] = capture_send(reference, call2);
  EXPECT_EQ(reconstructed, parse_bytewise(ref_wire2).body);  // byte-for-byte
}

TEST(WireCodingPipeline, PresetReoffersCompressAgainstPreviousGeneration) {
  core::SendPipeline::Options options;  // exact stuffing: growth must shift
  options.coding = ContentCoding::kDeflatePreset;
  core::SendPipeline pipeline(options);
  core::UpdateJournal journal;
  pipeline.set_journal(&journal);
  diffwire::ClientSession session(/*token=*/5);
  pipeline.set_diffwire(&session);
  core::SendPipeline reference{core::SendPipeline::Options{}};

  std::vector<double> values = soap::doubles_with_serialized_length(256, 17, 5);
  const RpcCall call1 = soap::make_double_array_call(values);
  const std::uint64_t wire_id = session.wire_id(call1.structure_signature());
  auto [wire1, report1] = capture_send(pipeline, call1);
  http::HttpRequest offer1 = parse_bytewise(wire1);
  capture_send(reference, call1);

  diffwire::ReplicaStore::Options store_options;
  store_options.retain_dictionaries = true;
  diffwire::ReplicaStore store(store_options);
  store.pin(wire_id, offer1.body);
  session.note_ack(wire_id);
  session.note_coding_ack(wire_id);

  // A wider value outgrows its exact-width field: structural update, full
  // re-offer — but the body is near-identical to the previous generation,
  // so the preset window compresses it to almost nothing (the MCM/re-offer
  // series win the bench gates on).
  bsoap::Rng rng(77);
  values[10] = soap::double_with_serialized_length(rng, 23);
  const RpcCall call2 = soap::make_double_array_call(values);
  auto [wire2, report2] = capture_send(pipeline, call2);
  EXPECT_FALSE(report2.patch_send);
  EXPECT_EQ(report2.coding, ContentCoding::kDeflatePreset);

  http::HttpRequest offer2 = parse_bytewise(wire2);
  ASSERT_NE(offer2.find(diffwire::kDiffHeader), nullptr);
  EXPECT_EQ(offer2.find(diffwire::kDiffHeader)->value, diffwire::kOfferValue);
  ASSERT_NE(offer2.find("Content-Encoding"), nullptr);
  EXPECT_EQ(offer2.find("Content-Encoding")->value,
            http::coding_name(ContentCoding::kDeflatePreset));

  Result<std::string> decoded =
      store.decode_preset(wire_id, offer2.body, 1u << 20);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  auto [ref_wire2, ref_report2] = capture_send(reference, call2);
  EXPECT_EQ(decoded.value(), parse_bytewise(ref_wire2).body);
  EXPECT_LT(offer2.body.size(), decoded.value().size() / 4);  // >= 4x shrink

  // The server re-pins the decoded body, rolling the dictionary generation.
  EXPECT_TRUE(store.pin(wire_id, decoded.value()));
}

TEST(WireCodingPipeline, PresetDegradesToIdentityWithoutDiffwire) {
  core::SendPipeline::Options options;
  options.tmpl = stuffed_config();
  options.coding = ContentCoding::kDeflatePreset;
  core::SendPipeline pipeline(options);  // no diff-wire session attached

  const RpcCall call = soap::make_double_array_call(
      soap::doubles_with_serialized_length(64, 17, 2));
  auto [wire, report] = capture_send(pipeline, call);
  EXPECT_EQ(report.coding, ContentCoding::kIdentity);
  http::HttpRequest request = parse_bytewise(wire);
  EXPECT_EQ(request.find("Content-Encoding"), nullptr);
  EXPECT_EQ(request.find(diffwire::kCodingHeader), nullptr);
}

// --- response negotiation --------------------------------------------------

Result<Value> padded_handler(const RpcCall&) {
  std::string text;
  for (int i = 0; i < 200; ++i) text += "padding 0123456789 padding | ";
  return Value::from_string(std::move(text));
}

/// One raw request against a running server; returns the decoded body and
/// reports the negotiated Content-Encoding (empty = identity).
std::string fetch_with_accept(std::uint16_t port, const char* accept,
                              int* status, std::string* encoding) {
  Result<std::unique_ptr<net::Transport>> conn = net::tcp_connect(port);
  EXPECT_TRUE(conn.ok());
  if (!conn.ok()) return {};
  http::HttpConnection connection(*conn.value());

  buffer::StringSink sink;
  soap::write_rpc_envelope(sink,
                           soap::make_double_array_call({1.0, 2.0, 3.0}));
  const std::string envelope = sink.take();

  http::HttpRequest head;
  head.headers.push_back(http::Header{"Host", "localhost"});
  head.headers.push_back(
      http::Header{"Content-Type", "text/xml; charset=utf-8"});
  if (accept != nullptr) {
    head.headers.push_back(http::Header{"Accept-Encoding", accept});
  }
  const net::ConstSlice body[] = {
      net::ConstSlice{envelope.data(), envelope.size()}};
  EXPECT_TRUE(connection.send_request(std::move(head), body).ok());
  Result<http::HttpResponse> response = connection.read_response();
  EXPECT_TRUE(response.ok())
      << (response.ok() ? "" : response.error().to_string());
  if (!response.ok()) return {};
  *status = response.value().status;
  const http::Header* coded = response.value().find("Content-Encoding");
  *encoding = coded != nullptr ? coded->value : "";
  return response.value().body;  // read_response already decoded it
}

void expect_negotiated_responses_match_identity(server::IoModel io_model) {
  server::ServerRuntimeOptions options;
  options.workers = 2;
  options.io_model = io_model;
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(padded_handler, options);
  ASSERT_TRUE(server.ok());
  const std::uint16_t port = server.value()->port();

  int status = 0;
  std::string encoding;
  const std::string identity =
      fetch_with_accept(port, nullptr, &status, &encoding);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(encoding, "");
  ASSERT_GT(identity.size(), 256u);  // big enough to be worth coding

  // deflate offered -> deflate on the wire, identical bytes after decode.
  EXPECT_EQ(fetch_with_accept(port, "deflate", &status, &encoding), identity);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(encoding, "deflate");

  // deflate preferred over gzip when both are offered.
  EXPECT_EQ(fetch_with_accept(port, "gzip, deflate", &status, &encoding),
            identity);
  EXPECT_EQ(encoding, "deflate");

  // Unknown tokens and q-values are skipped, not fatal.
  EXPECT_EQ(
      fetch_with_accept(port, "br, gzip;q=0.5", &status, &encoding),
      identity);
  EXPECT_EQ(encoding, "gzip");

  // Nothing the server speaks -> identity.
  EXPECT_EQ(fetch_with_accept(port, "br, zstd", &status, &encoding), identity);
  EXPECT_EQ(encoding, "");

  ASSERT_TRUE(wait_for(
      [&] { return server.value()->stats().compressed_sends >= 3u; }));
  EXPECT_GT(server.value()->stats().coding_bytes_saved, 0u);
  server.value()->stop();
}

TEST(WireCodingEndToEnd, BlockingEngineNegotiatesByteIdenticalResponses) {
  expect_negotiated_responses_match_identity(server::IoModel::kBlocking);
}

TEST(WireCodingEndToEnd, ReactorEngineNegotiatesByteIdenticalResponses) {
  expect_negotiated_responses_match_identity(server::IoModel::kReactor);
}

TEST(WireCodingEndToEnd, DisabledCodingsAnswerIdentity) {
  server::ServerRuntimeOptions options;
  options.workers = 1;
  options.codings.clear();
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(padded_handler, options);
  ASSERT_TRUE(server.ok());
  int status = 0;
  std::string encoding;
  const std::string body = fetch_with_accept(server.value()->port(),
                                             "deflate, gzip", &status,
                                             &encoding);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(encoding, "");
  EXPECT_GT(body.size(), 0u);
  EXPECT_EQ(server.value()->stats().compressed_sends, 0u);
  server.value()->stop();
}

// --- decompression bound ---------------------------------------------------

void expect_bomb_answers_413(server::IoModel io_model) {
  server::ServerRuntimeOptions options;
  options.workers = 1;
  options.io_model = io_model;
  options.max_inflate_bytes = 1024;
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> conn =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(conn.ok());
  http::HttpConnection connection(*conn.value());
  http::HttpRequest head;
  head.headers.push_back(http::Header{"Host", "localhost"});
  const std::string bomb(1u << 20, 'x');  // inflates far past the bound
  ASSERT_TRUE(
      connection.send_request(std::move(head), bomb, ContentCoding::kGzip)
          .ok());
  Result<http::HttpResponse> response = connection.read_response();
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 413);
  EXPECT_NE(response.value().body.find("SOAP-ENV:Client"), std::string::npos);
  server.value()->stop();
}

TEST(WireCodingEndToEnd, BlockingEngineBoundsDecompressionWith413) {
  expect_bomb_answers_413(server::IoModel::kBlocking);
}

TEST(WireCodingEndToEnd, ReactorEngineBoundsDecompressionWith413) {
  expect_bomb_answers_413(server::IoModel::kReactor);
}

// --- end-to-end coded requests ---------------------------------------------

TEST(WireCodingEndToEnd, DeflateCodedRequestsServeOnBothEngines) {
  for (const server::IoModel io_model :
       {server::IoModel::kBlocking, server::IoModel::kReactor}) {
    server::ServerRuntimeOptions options;
    options.workers = 2;
    options.io_model = io_model;
    Result<std::unique_ptr<server::ServerRuntime>> server =
        server::ServerRuntime::start(sum_handler, options);
    ASSERT_TRUE(server.ok());

    BsoapClientConfig config;
    config.with_compression(ContentCoding::kDeflate);
    BsoapClient client(tcp_dialer(server.value()->port()), config);
    std::vector<double> values =
        soap::doubles_with_serialized_length(64, 17, 13);
    bsoap::Rng rng(14);
    for (int i = 0; i < 5; ++i) {
      values[static_cast<std::size_t>(i) % values.size()] =
          soap::double_with_serialized_length(rng, 17);
      Result<Value> result =
          client.invoke(soap::make_double_array_call(values));
      ASSERT_TRUE(result.ok()) << result.error().to_string();
      EXPECT_EQ(result.value().as_double(), sum_of(values));
    }
    EXPECT_EQ(server.value()->stats().faults, 0u);
    server.value()->stop();
  }
}

// --- end-to-end preset flow ------------------------------------------------

BsoapClientConfig preset_client_config() {
  BsoapClientConfig cfg;
  cfg.tmpl = stuffed_config();
  return cfg.with_diffwire(true).with_compression(
      ContentCoding::kDeflatePreset, /*min_body_bytes=*/32);
}

/// Drives `iters` invokes mutating a block of values per step; every result
/// must match the locally computed sum.
void drive_preset_invokes(BsoapClient& client, int iters, std::uint64_t seed) {
  std::vector<double> values = soap::doubles_with_serialized_length(64, 17, seed);
  bsoap::Rng rng(seed ^ 0x5eed);
  for (int i = 0; i < iters; ++i) {
    for (int k = 0; k < 8; ++k) {
      values[rng.next_below(values.size())] =
          soap::double_with_serialized_length(rng, 17);
    }
    Result<Value> result = client.invoke(soap::make_double_array_call(values));
    ASSERT_TRUE(result.ok()) << "iter " << i << ": "
                             << result.error().to_string();
    EXPECT_EQ(result.value().as_double(), sum_of(values)) << "iter " << i;
  }
}

TEST(WireCodingEndToEnd, PresetClientPatchesOnBothEngines) {
  for (const server::IoModel io_model :
       {server::IoModel::kBlocking, server::IoModel::kReactor}) {
    server::ServerRuntimeOptions options;
    options.workers = 2;
    options.io_model = io_model;
    Result<std::unique_ptr<server::ServerRuntime>> server =
        server::ServerRuntime::start(sum_handler, options);
    ASSERT_TRUE(server.ok());

    BsoapClient client(tcp_dialer(server.value()->port()),
                       preset_client_config());
    drive_preset_invokes(client, 12, 17);

    const diffwire::ClientDiffStats* cs = client.diffwire_stats();
    ASSERT_NE(cs, nullptr);
    EXPECT_EQ(cs->offers_sent, 1u);
    EXPECT_EQ(cs->acks, 1u);
    EXPECT_EQ(cs->patch_sends, 11u);
    EXPECT_EQ(cs->patch_nacks, 0u);
    EXPECT_EQ(server.value()->stats().faults, 0u);
    server.value()->stop();
  }
}

TEST(WireCodingEndToEnd, PresetNackSelfHealsAfterReplicaLoss) {
  server::ServerRuntimeOptions options;
  options.workers = 1;
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  BsoapClient client(tcp_dialer(server.value()->port()),
                     preset_client_config());
  drive_preset_invokes(client, 6, 23);

  // Replica loss: the next preset-coded patch names a template the server
  // no longer holds; the NACK erases the client's dictionary too, so the
  // in-invoke retry is an identity full send that re-offers and re-pins.
  server.value()->replicas()->clear();
  drive_preset_invokes(client, 4, 24);

  const diffwire::ClientDiffStats* cs = client.diffwire_stats();
  EXPECT_EQ(cs->patch_nacks, 1u);
  EXPECT_EQ(cs->fallback_full_sends, 1u);
  EXPECT_EQ(cs->offers_sent, 2u);
  EXPECT_EQ(cs->acks, 2u);
  EXPECT_EQ(server.value()->stats().faults, 0u);
  server.value()->stop();
}

TEST(WireCodingEndToEnd, ServerWithoutPresetLeavesClientOnIdentity) {
  server::ServerRuntimeOptions options;
  options.workers = 1;
  options.codings.clear();  // server speaks no codings at all
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  BsoapClient client(tcp_dialer(server.value()->port()),
                     preset_client_config());
  drive_preset_invokes(client, 6, 29);  // never acked -> identity sends

  const diffwire::ClientDiffStats* cs = client.diffwire_stats();
  EXPECT_EQ(cs->acks, 1u);  // diff-wire still pins; only the coding is off
  EXPECT_EQ(cs->patch_sends, 5u);
  EXPECT_EQ(cs->patch_nacks, 0u);
  EXPECT_EQ(server.value()->stats().compressed_sends, 0u);
  EXPECT_EQ(server.value()->stats().faults, 0u);
  server.value()->stop();
}

/// Counts every byte the client puts on the wire.
class CountingTransport final : public net::Transport {
 public:
  CountingTransport(std::unique_ptr<net::Transport> inner,
                    std::atomic<std::uint64_t>* bytes)
      : inner_(std::move(inner)), bytes_(bytes) {}

  Status send(const char* data, std::size_t n) override {
    bytes_->fetch_add(n, std::memory_order_relaxed);
    return inner_->send(data, n);
  }
  Status send_slices(std::span<const net::ConstSlice> slices) override {
    std::uint64_t total = 0;
    for (const net::ConstSlice& slice : slices) total += slice.len;
    bytes_->fetch_add(total, std::memory_order_relaxed);
    return inner_->send_slices(slices);
  }
  Result<std::size_t> recv(char* out, std::size_t n) override {
    return inner_->recv(out, n);
  }
  void shutdown_send() override { inner_->shutdown_send(); }
  void shutdown_both() override { inner_->shutdown_both(); }

 private:
  std::unique_ptr<net::Transport> inner_;
  std::atomic<std::uint64_t>* bytes_;
};

/// Structural-update workload (every send re-offers in full): each step
/// grows one value past its exact-width field, forcing re-serialization, so
/// the preset coding's full re-offer shrink is what separates the clients.
std::uint64_t drive_structural_series(BsoapClient& client,
                                      std::atomic<std::uint64_t>& bytes,
                                      int iters) {
  std::vector<double> values = soap::doubles_with_serialized_length(256, 17, 3);
  bsoap::Rng rng(71);
  Result<Value> warmup = client.invoke(soap::make_double_array_call(values));
  EXPECT_TRUE(warmup.ok());
  bytes.store(0, std::memory_order_relaxed);
  for (int i = 0; i < iters; ++i) {
    values[static_cast<std::size_t>(i)] =
        soap::double_with_serialized_length(rng, 23);
    Result<Value> result = client.invoke(soap::make_double_array_call(values));
    EXPECT_TRUE(result.ok()) << "iter " << i;
    if (result.ok()) {
      EXPECT_EQ(result.value().as_double(), sum_of(values));
    }
  }
  return bytes.load(std::memory_order_relaxed);
}

TEST(WireCodingEndToEnd, PresetReoffersShrinkWireBytesAtLeastTwofold) {
  server::ServerRuntimeOptions options;
  options.workers = 2;
  Result<std::unique_ptr<server::ServerRuntime>> server =
      server::ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());
  const std::uint16_t port = server.value()->port();

  auto counted_dialer = [port](std::atomic<std::uint64_t>* bytes) {
    return [port, bytes]() -> Result<std::unique_ptr<net::Transport>> {
      Result<std::unique_ptr<net::Transport>> conn = net::tcp_connect(port);
      if (!conn.ok()) return conn.error();
      return std::unique_ptr<net::Transport>(
          std::make_unique<CountingTransport>(std::move(conn.value()), bytes));
    };
  };

  std::atomic<std::uint64_t> identity_bytes{0};
  BsoapClientConfig identity_config;
  identity_config.with_diffwire(true);  // exact stuffing: all re-offers
  BsoapClient identity_client(counted_dialer(&identity_bytes),
                              identity_config);
  const std::uint64_t identity_total =
      drive_structural_series(identity_client, identity_bytes, 16);

  std::atomic<std::uint64_t> preset_bytes{0};
  BsoapClientConfig preset_config;
  preset_config.with_diffwire(true).with_compression(
      ContentCoding::kDeflatePreset, /*min_body_bytes=*/64);
  BsoapClient preset_client(counted_dialer(&preset_bytes), preset_config);
  const std::uint64_t preset_total =
      drive_structural_series(preset_client, preset_bytes, 16);

  // Identical workloads (same seeds), so the ratio isolates the coding. The
  // acceptance bar is 2x; near-identical generations compress far harder.
  EXPECT_GT(identity_client.diffwire_stats()->offers_sent, 10u);
  EXPECT_GT(preset_client.diffwire_stats()->offers_sent, 10u);
  EXPECT_LT(preset_total * 2, identity_total)
      << "preset " << preset_total << " vs identity " << identity_total;
  EXPECT_EQ(server.value()->stats().faults, 0u);
  server.value()->stop();
}

}  // namespace
}  // namespace bsoap
