// Tests for the WSDL substrate: model validation, parser, writer round trip,
// call validation and stub code generation.
#include <gtest/gtest.h>

#include "soap/workload.hpp"
#include "wsdl/codegen.hpp"
#include "wsdl/model.hpp"
#include "wsdl/parser.hpp"
#include "wsdl/validator.hpp"
#include "wsdl/writer.hpp"

namespace bsoap::wsdl {
namespace {

using soap::Value;

WsdlDocument bench_service() {
  return ServiceBuilder("BenchService", "urn:bsoap-bench")
      .add_struct_type("MIO", {TypedField{"x", XsdType::kInt, ""},
                               TypedField{"y", XsdType::kInt, ""},
                               TypedField{"v", XsdType::kDouble, ""}})
      .add_array_type("DoubleArray", "xsd:double")
      .add_array_type("MIOArray", "tns:MIO")
      .add_operation("sendData",
                     {TypedField{"data", XsdType::kArray, "xsd:double"}},
                     TypedField{"return", XsdType::kInt, ""})
      .add_one_way_operation("pushMios",
                             {TypedField{"mios", XsdType::kArray, "tns:MIO"}})
      .set_location("http://localhost:8080/bench")
      .build();
}

TEST(WsdlModel, Lookups) {
  const WsdlDocument doc = bench_service();
  EXPECT_NE(doc.find_type("MIO"), nullptr);
  EXPECT_NE(doc.find_type("tns:MIO"), nullptr);  // qname tolerated
  EXPECT_EQ(doc.find_type("Nope"), nullptr);
  EXPECT_NE(doc.find_message("sendDataRequest"), nullptr);
  ASSERT_NE(doc.find_operation("sendData"), nullptr);
  EXPECT_EQ(doc.find_operation("sendData")->output_message,
            "sendDataResponse");
  EXPECT_EQ(doc.find_operation("pushMios")->output_message, "");
  EXPECT_TRUE(doc.validate().ok());
}

TEST(WsdlModel, ValidateCatchesDanglingReferences) {
  WsdlDocument doc = bench_service();
  doc.messages.erase(doc.messages.begin());  // drop sendDataRequest
  EXPECT_FALSE(doc.validate().ok());
}

TEST(WsdlWriter, EmitsCoreSections) {
  const std::string text = write_wsdl(bench_service());
  EXPECT_NE(text.find("<wsdl:definitions"), std::string::npos);
  EXPECT_NE(text.find("targetNamespace=\"urn:bsoap-bench\""),
            std::string::npos);
  EXPECT_NE(text.find("<xsd:complexType name=\"MIO\">"), std::string::npos);
  EXPECT_NE(text.find("wsdl:arrayType=\"xsd:double[]\""), std::string::npos);
  EXPECT_NE(text.find("<wsdl:message name=\"sendDataRequest\">"),
            std::string::npos);
  EXPECT_NE(text.find("<soap:binding style=\"rpc\""), std::string::npos);
  EXPECT_NE(text.find("soapAction=\"sendData\""), std::string::npos);
  EXPECT_NE(text.find("location=\"http://localhost:8080/bench\""),
            std::string::npos);
}

TEST(WsdlParser, RoundTripThroughWriter) {
  const WsdlDocument original = bench_service();
  Result<WsdlDocument> parsed = parse_wsdl(write_wsdl(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const WsdlDocument& doc = parsed.value();

  EXPECT_EQ(doc.name, original.name);
  EXPECT_EQ(doc.target_namespace, original.target_namespace);
  ASSERT_EQ(doc.types.size(), original.types.size());
  EXPECT_EQ(doc.find_type("MIO")->fields.size(), 3u);
  EXPECT_EQ(doc.find_type("MIO")->fields[2].type, XsdType::kDouble);
  EXPECT_TRUE(doc.find_type("DoubleArray")->is_array());
  EXPECT_EQ(doc.find_type("DoubleArray")->array_of, "xsd:double");

  ASSERT_NE(doc.find_operation("sendData"), nullptr);
  EXPECT_EQ(doc.find_operation("sendData")->soap_action, "sendData");
  const Message* request = doc.find_message("sendDataRequest");
  ASSERT_NE(request, nullptr);
  ASSERT_EQ(request->parts.size(), 1u);
  // The part referenced tns:DoubleArray; resolution turns it into kArray.
  EXPECT_EQ(request->parts[0].type, XsdType::kArray);
  EXPECT_EQ(request->parts[0].type_name, "xsd:double");

  ASSERT_EQ(doc.services.size(), 1u);
  ASSERT_EQ(doc.services[0].ports.size(), 1u);
  EXPECT_EQ(doc.services[0].ports[0].location, "http://localhost:8080/bench");
}

TEST(WsdlParser, RejectsGarbage) {
  EXPECT_FALSE(parse_wsdl("").ok());
  EXPECT_FALSE(parse_wsdl("<notwsdl/>").ok());
  EXPECT_FALSE(parse_wsdl("<definitions><message name=\"m\">").ok());
}

TEST(WsdlParser, HandmadeDocument) {
  const std::string text = R"(<?xml version="1.0"?>
<definitions name="Calc" targetNamespace="urn:calc"
    xmlns="http://schemas.xmlsoap.org/wsdl/"
    xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"
    xmlns:xsd="http://www.w3.org/2001/XMLSchema" xmlns:tns="urn:calc">
  <documentation>adds numbers</documentation>
  <message name="addRequest">
    <part name="a" type="xsd:double"/>
    <part name="b" type="xsd:double"/>
  </message>
  <message name="addResponse"><part name="return" type="xsd:double"/></message>
  <portType name="CalcPortType">
    <operation name="add">
      <input message="tns:addRequest"/>
      <output message="tns:addResponse"/>
    </operation>
  </portType>
  <binding name="CalcBinding" type="tns:CalcPortType">
    <soap:binding style="rpc" transport="http://schemas.xmlsoap.org/soap/http"/>
    <operation name="add"><soap:operation soapAction="urn:calc#add"/></operation>
  </binding>
  <service name="CalcService">
    <port name="CalcPort" binding="tns:CalcBinding">
      <soap:address location="http://example.org/calc"/>
    </port>
  </service>
</definitions>)";
  Result<WsdlDocument> parsed = parse_wsdl(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().find_operation("add")->soap_action, "urn:calc#add");
  EXPECT_EQ(parsed.value().find_message("addRequest")->parts.size(), 2u);
  EXPECT_EQ(parsed.value().find_message("addRequest")->parts[0].type,
            XsdType::kDouble);
}

TEST(WsdlValidator, AcceptsMatchingCall) {
  const WsdlDocument doc = bench_service();
  const soap::RpcCall call =
      soap::make_double_array_call(soap::random_doubles(10, 1));
  EXPECT_TRUE(validate_call(doc, call).ok());
}

TEST(WsdlValidator, RejectsMismatches) {
  const WsdlDocument doc = bench_service();

  soap::RpcCall wrong_method =
      soap::make_double_array_call(soap::random_doubles(4, 1));
  wrong_method.method = "nope";
  EXPECT_FALSE(validate_call(doc, wrong_method).ok());

  soap::RpcCall wrong_ns =
      soap::make_double_array_call(soap::random_doubles(4, 1));
  wrong_ns.service_namespace = "urn:other";
  EXPECT_FALSE(validate_call(doc, wrong_ns).ok());

  soap::RpcCall wrong_kind = soap::make_int_array_call({1, 2, 3});
  EXPECT_FALSE(validate_call(doc, wrong_kind).ok());

  soap::RpcCall wrong_param_name =
      soap::make_double_array_call(soap::random_doubles(4, 1));
  wrong_param_name.params[0].name = "payload";
  EXPECT_FALSE(validate_call(doc, wrong_param_name).ok());

  soap::RpcCall extra_param =
      soap::make_double_array_call(soap::random_doubles(4, 1));
  extra_param.params.push_back(soap::Param{"extra", Value::from_int(1)});
  EXPECT_FALSE(validate_call(doc, extra_param).ok());
}

TEST(WsdlValidator, MioArrayCall) {
  const WsdlDocument doc = bench_service();
  soap::RpcCall call = soap::make_mio_array_call(soap::random_mios(5, 2));
  call.method = "pushMios";
  call.params[0].name = "mios";
  EXPECT_TRUE(validate_call(doc, call).ok());
}

TEST(WsdlValidator, ResultValidation) {
  const WsdlDocument doc = bench_service();
  EXPECT_TRUE(validate_result(doc, "sendData", Value::from_int(3)).ok());
  EXPECT_FALSE(validate_result(doc, "sendData", Value::from_double(3)).ok());
  EXPECT_FALSE(validate_result(doc, "pushMios", Value::from_int(3)).ok());
}

TEST(WsdlValidator, CallSkeleton) {
  const WsdlDocument doc = bench_service();
  Result<soap::RpcCall> skeleton = make_call_skeleton(doc, "sendData", 16);
  ASSERT_TRUE(skeleton.ok()) << skeleton.error().to_string();
  EXPECT_EQ(skeleton.value().method, "sendData");
  EXPECT_EQ(skeleton.value().params[0].value.doubles().size(), 16u);
  EXPECT_TRUE(validate_call(doc, skeleton.value()).ok());

  Result<soap::RpcCall> mios = make_call_skeleton(doc, "pushMios", 4);
  ASSERT_TRUE(mios.ok());
  EXPECT_EQ(mios.value().params[0].value.mios().size(), 4u);
}

TEST(WsdlCodegen, GeneratesTypedStub) {
  const WsdlDocument doc = bench_service();
  Result<std::string> stub = generate_client_stub(doc, CodegenOptions{});
  ASSERT_TRUE(stub.ok()) << stub.error().to_string();
  const std::string& text = stub.value();
  EXPECT_NE(text.find("class BenchServiceStub"), std::string::npos);
  EXPECT_NE(text.find("bsoap::Result<std::int32_t> sendData("
                      "const std::vector<double>& data)"),
            std::string::npos);
  EXPECT_NE(text.find("call.method = \"sendData\";"), std::string::npos);
  EXPECT_NE(text.find("call.service_namespace = \"urn:bsoap-bench\";"),
            std::string::npos);
  EXPECT_NE(text.find("bsoap::soap::Value::from_double_array(data)"),
            std::string::npos);
  // One-way operation returns the SendReport.
  EXPECT_NE(text.find("bsoap::Result<bsoap::core::SendReport> pushMios("
                      "const std::vector<bsoap::soap::Mio>& mios)"),
            std::string::npos);
  EXPECT_NE(text.find("namespace bsoap_stubs"), std::string::npos);
}

TEST(WsdlCodegen, CustomNamespace) {
  CodegenOptions options;
  options.cpp_namespace = "acme";
  options.class_suffix = "Client";
  Result<std::string> stub = generate_client_stub(bench_service(), options);
  ASSERT_TRUE(stub.ok());
  EXPECT_NE(stub.value().find("namespace acme"), std::string::npos);
  EXPECT_NE(stub.value().find("class BenchServiceClient"), std::string::npos);
}

}  // namespace
}  // namespace bsoap::wsdl
