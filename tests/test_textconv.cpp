// Unit and property tests for the number <-> ASCII conversion layer — the
// code path the paper identifies as the SOAP bottleneck, so correctness here
// underwrites every other experiment.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "common/rng.hpp"
#include "textconv/dtoa.hpp"
#include "textconv/itoa.hpp"
#include "textconv/parse.hpp"
#include "textconv/pow10cache.hpp"
#include "textconv/swar.hpp"
#include "textconv/widths.hpp"

namespace bsoap::textconv {
namespace {

std::string itoa32(std::int32_t v) {
  char buf[kMaxInt32Chars];
  return std::string(buf, static_cast<std::size_t>(write_i32(buf, v)));
}

std::string itoa64(std::int64_t v) {
  char buf[kMaxInt64Chars];
  return std::string(buf, static_cast<std::size_t>(write_i64(buf, v)));
}

std::string dtoa(double v) {
  char buf[kMaxDoubleChars];
  return std::string(buf, static_cast<std::size_t>(write_double(buf, v)));
}

TEST(Itoa, SpotValues) {
  EXPECT_EQ(itoa32(0), "0");
  EXPECT_EQ(itoa32(7), "7");
  EXPECT_EQ(itoa32(-1), "-1");
  EXPECT_EQ(itoa32(42), "42");
  EXPECT_EQ(itoa32(100), "100");
  EXPECT_EQ(itoa32(13902), "13902");  // the paper's example (Binghamton ZIP)
  EXPECT_EQ(itoa32(2147483647), "2147483647");
  EXPECT_EQ(itoa32(std::numeric_limits<std::int32_t>::min()), "-2147483648");
}

TEST(Itoa, Int64SpotValues) {
  EXPECT_EQ(itoa64(0), "0");
  EXPECT_EQ(itoa64(std::numeric_limits<std::int64_t>::max()),
            "9223372036854775807");
  EXPECT_EQ(itoa64(std::numeric_limits<std::int64_t>::min()),
            "-9223372036854775808");
}

TEST(Itoa, MaxWidthRespected) {
  EXPECT_LE(itoa32(std::numeric_limits<std::int32_t>::min()).size(),
            static_cast<std::size_t>(kMaxInt32Chars));
  EXPECT_LE(itoa64(std::numeric_limits<std::int64_t>::min()).size(),
            static_cast<std::size_t>(kMaxInt64Chars));
}

TEST(Itoa, SerializedLengthMatchesWrite) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const std::int32_t v = rng.next_i32();
    EXPECT_EQ(serialized_length_i32(v), static_cast<int>(itoa32(v).size()));
  }
}

TEST(Itoa, DigitBoundaries) {
  // Every power-of-ten boundary for the digit counters.
  std::uint32_t p = 1;
  for (int digits = 1; digits <= 10; ++digits) {
    EXPECT_EQ(decimal_digits_u32(p), digits) << p;
    if (p > 1) {
      EXPECT_EQ(decimal_digits_u32(p - 1), digits - 1) << p - 1;
    }
    if (digits < 10) p *= 10;
  }
  EXPECT_EQ(decimal_digits_u32(4294967295u), 10);
  EXPECT_EQ(decimal_digits_u64(18446744073709551615ull), 20);
}

TEST(Itoa, RoundTripRandom) {
  Rng rng(11);
  for (int i = 0; i < 200000; ++i) {
    const std::int32_t v = rng.next_i32();
    EXPECT_EQ(parse_i32(itoa32(v)).value(), v);
  }
  for (int i = 0; i < 50000; ++i) {
    const std::int64_t v = static_cast<std::int64_t>(rng.next_u64());
    EXPECT_EQ(parse_i64(itoa64(v)).value(), v);
  }
}

TEST(Dtoa, SpotValues) {
  EXPECT_EQ(dtoa(0.0), "0");
  EXPECT_EQ(dtoa(-0.0), "-0");
  EXPECT_EQ(dtoa(1.0), "1");
  EXPECT_EQ(dtoa(0.1), "0.1");
  EXPECT_EQ(dtoa(3.14), "3.14");
  EXPECT_EQ(dtoa(-2.5), "-2.5");
  EXPECT_EQ(dtoa(1e22), "1e22");
  EXPECT_EQ(dtoa(100.0), "100");
  EXPECT_EQ(dtoa(1e-7), "1e-7");
  EXPECT_EQ(dtoa(0.001), "0.001");
  EXPECT_EQ(dtoa(5e-324), "5e-324");  // smallest subnormal
}

TEST(Dtoa, SpecialValues) {
  EXPECT_EQ(dtoa(std::numeric_limits<double>::infinity()), "INF");
  EXPECT_EQ(dtoa(-std::numeric_limits<double>::infinity()), "-INF");
  EXPECT_EQ(dtoa(std::numeric_limits<double>::quiet_NaN()), "NaN");
}

TEST(Dtoa, PaperMaximumWidth) {
  // The paper's stuffing analysis relies on 24 characters being the maximum
  // double encoding.
  EXPECT_EQ(dtoa(-2.2250738585072014e-308).size(), 24u);
  EXPECT_LE(dtoa(std::numeric_limits<double>::max()).size(), 24u);
  EXPECT_LE(dtoa(-std::numeric_limits<double>::denorm_min()).size(), 24u);
}

TEST(Dtoa, RoundTripAgainstStrtod) {
  Rng rng(42);
  for (int i = 0; i < 500000; ++i) {
    const double v = rng.next_finite_double();
    const std::string s = dtoa(v);
    ASSERT_LE(s.size(), static_cast<std::size_t>(kMaxDoubleChars));
    const double back = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&back, &v, sizeof(v)), 0)
        << s << " vs " << v;
  }
}

TEST(Dtoa, RoundTripThroughOwnParser) {
  Rng rng(43);
  for (int i = 0; i < 200000; ++i) {
    const double v = rng.next_finite_double();
    const std::string s = dtoa(v);
    Result<double> back = parse_double(s);
    ASSERT_TRUE(back.ok()) << s;
    const double b = back.value();
    EXPECT_EQ(std::memcmp(&b, &v, sizeof(v)), 0) << s;
  }
}

TEST(Dtoa, SubnormalsRoundTrip) {
  Rng rng(44);
  for (int i = 0; i < 20000; ++i) {
    // Construct subnormals directly: exponent field zero.
    const std::uint64_t bits = rng.next_u64() & 0x800fffffffffffffull;
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    if (v == 0.0) continue;
    const std::string s = dtoa(v);
    const double back = std::strtod(s.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&back, &v, sizeof(v)), 0) << s;
  }
}

TEST(Dtoa, GrisuDigitsAreShortEnough) {
  // Grisu2 is not guaranteed shortest, but must stay within 17 significant
  // digits (otherwise the 24-char width bound would break).
  Rng rng(45);
  for (int i = 0; i < 100000; ++i) {
    double v = rng.next_finite_double();
    if (v <= 0) v = -v;
    if (v == 0) continue;
    DecimalDigits dec;
    grisu2(v, &dec);
    EXPECT_LE(dec.length, 17);
    EXPECT_GE(dec.length, 1);
    // No trailing zero digits (they would waste width).
    EXPECT_NE(dec.digits[dec.length - 1], '0');
  }
}

TEST(Pow10Cache, AgainstLibm) {
  // The exactly computed cached powers must agree with ldexp/pow to within
  // a relative error of ~2^-63.
  for (int q = -300; q <= 300; q += 7) {
    const DiyFp c = cached_pow10(q);
    const double approx = std::ldexp(static_cast<double>(c.f), c.e);
    const double expected = std::pow(10.0, q);
    EXPECT_NEAR(approx / expected, 1.0, 1e-14) << "q=" << q;
  }
}

TEST(Pow10Cache, NormalizedSignificands) {
  for (int q = kPow10CacheMin; q <= kPow10CacheMax; ++q) {
    const DiyFp c = cached_pow10(q);
    EXPECT_NE(c.f & (1ull << 63), 0u) << "q=" << q;
  }
}

TEST(FormatDecimal, PointPlacement) {
  char buf[32];
  const char digits[] = "1234";
  // value = 1234 * 10^k
  EXPECT_EQ(std::string(buf, format_decimal(buf, digits, 4, 0)), "1234");
  EXPECT_EQ(std::string(buf, format_decimal(buf, digits, 4, 2)), "123400");
  EXPECT_EQ(std::string(buf, format_decimal(buf, digits, 4, -2)), "12.34");
  EXPECT_EQ(std::string(buf, format_decimal(buf, digits, 4, -4)), "0.1234");
  EXPECT_EQ(std::string(buf, format_decimal(buf, digits, 4, -6)), "0.001234");
  EXPECT_EQ(std::string(buf, format_decimal(buf, digits, 4, -8)),
            "1.234e-5");
  EXPECT_EQ(std::string(buf, format_decimal(buf, digits, 4, 20)),
            "1.234e23");
}

TEST(ParseInt, Errors) {
  EXPECT_FALSE(parse_i32("").ok());
  EXPECT_FALSE(parse_i32("12a").ok());
  EXPECT_FALSE(parse_i32("2147483648").ok());   // overflow
  EXPECT_TRUE(parse_i32("-2147483648").ok());   // min fits
  EXPECT_FALSE(parse_i32("-2147483649").ok());
  EXPECT_FALSE(parse_i32("-").ok());
  EXPECT_TRUE(parse_i32("+42").ok());
  EXPECT_FALSE(parse_u64("-1").ok());
  EXPECT_EQ(parse_u64("18446744073709551615").value(),
            18446744073709551615ull);
  EXPECT_FALSE(parse_u64("18446744073709551616").ok());
}

TEST(ParseDouble, Lexicals) {
  EXPECT_EQ(parse_double("0").value(), 0.0);
  EXPECT_EQ(parse_double("-4.5").value(), -4.5);
  EXPECT_EQ(parse_double("1e3").value(), 1000.0);
  EXPECT_EQ(parse_double("1E3").value(), 1000.0);
  EXPECT_EQ(parse_double(".5").value(), 0.5);
  EXPECT_EQ(parse_double("5.").value(), 5.0);
  EXPECT_EQ(parse_double("INF").value(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(parse_double("-INF").value(),
            -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(parse_double("NaN").value()));
  EXPECT_FALSE(parse_double("").ok());
  EXPECT_FALSE(parse_double("abc").ok());
  EXPECT_FALSE(parse_double("1.2.3").ok());
  EXPECT_FALSE(parse_double("1e").ok());
  EXPECT_FALSE(parse_double("1 2").ok());
}

TEST(ParseDouble, AgreesWithStrtodOnDecimalStrings) {
  Rng rng(77);
  for (int i = 0; i < 50000; ++i) {
    std::string s;
    if (rng.chance(1, 2)) s += '-';
    const int int_digits = static_cast<int>(rng.next_in(1, 18));
    for (int d = 0; d < int_digits; ++d) {
      s += static_cast<char>('0' + rng.next_below(10));
    }
    if (rng.chance(1, 2)) {
      s += '.';
      const int frac = static_cast<int>(rng.next_in(1, 18));
      for (int d = 0; d < frac; ++d) {
        s += static_cast<char>('0' + rng.next_below(10));
      }
    }
    if (rng.chance(1, 3)) {
      s += 'e';
      if (rng.chance(1, 2)) s += '-';
      s += static_cast<char>('1' + rng.next_below(9));
      s += static_cast<char>('0' + rng.next_below(10));
    }
    Result<double> mine = parse_double(s);
    ASSERT_TRUE(mine.ok()) << s;
    const double reference = std::strtod(s.c_str(), nullptr);
    const double m = mine.value();
    EXPECT_EQ(std::memcmp(&m, &reference, sizeof(m)), 0) << s;
  }
}

TEST(FormatDecimal, BoundaryPointPositions) {
  char buf[32];
  const char digits[] = "5";
  // P = point position: plain up to 17, exponent beyond; 0.000x down to
  // P = -3, exponent below.
  EXPECT_EQ(std::string(buf, format_decimal(buf, digits, 1, 16)),
            "50000000000000000");  // P = 17: still plain
  EXPECT_EQ(std::string(buf, format_decimal(buf, digits, 1, 17)), "5e17");
  EXPECT_EQ(std::string(buf, format_decimal(buf, digits, 1, -4)), "0.0005");
  EXPECT_EQ(std::string(buf, format_decimal(buf, digits, 1, -5)), "5e-5");
}

TEST(Dtoa, WriterFastPathMatchesWriteDouble) {
  // The XmlWriter double fast path and write_double must agree bit-for-bit.
  Rng rng(321);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.next_finite_double();
    char a[kMaxDoubleChars];
    char b[kMaxDoubleChars];
    const int la = write_double(a, v);
    const int lb = write_double(b, v);
    ASSERT_EQ(la, lb);
    ASSERT_EQ(std::memcmp(a, b, static_cast<std::size_t>(la)), 0);
  }
}

TEST(Dtoa, PowersOfTenExact) {
  // 10^k for small k are exactly representable; their shortest form must be
  // the bare power, plain or exponent per the format rules.
  char buf[kMaxDoubleChars];
  EXPECT_EQ(std::string(buf, write_double(buf, 1e0)), "1");
  EXPECT_EQ(std::string(buf, write_double(buf, 1e5)), "100000");
  EXPECT_EQ(std::string(buf, write_double(buf, 1e16)), "10000000000000000");
  EXPECT_EQ(std::string(buf, write_double(buf, 1e17)), "1e17");
  EXPECT_EQ(std::string(buf, write_double(buf, 1e-3)), "0.001");
  EXPECT_EQ(std::string(buf, write_double(buf, 1e-4)), "0.0001");  // P = -3
  EXPECT_EQ(std::string(buf, write_double(buf, 1e-5)), "1e-5");    // P = -4
}

class DtoaWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DtoaWidthSweep, ConstructibleAtEveryWidth) {
  // The workload generator must be able to hit every width the benchmarks
  // use; verify the width arithmetic from first principles here.
  const int chars = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(chars));
  // (The generator itself is tested in test_workload; here we confirm at
  // least one double of each width exists by searching.)
  bool found = false;
  for (int attempt = 0; attempt < 200000 && !found; ++attempt) {
    const double v = rng.next_finite_double();
    if (serialized_length_double(v) == chars) found = true;
  }
  if (chars >= 17) {
    EXPECT_TRUE(found) << "random search found no " << chars
                       << "-char double";
  }
  // Small widths are rare among random bit patterns; no assertion there.
}

INSTANTIATE_TEST_SUITE_P(Widths, DtoaWidthSweep,
                         ::testing::Values(17, 18, 20, 22, 23, 24));

// --- vectorized tier vs scalar reference ------------------------------------
//
// The SWAR/SSE2 conversion tiers must be byte-identical to the scalar code
// they replace: the differential-serialization invariants (serialized_len,
// content matches, patch checksums) all assume one value has exactly one
// lexical form.

/// Pins the dispatch tier for one test and restores CPU detection after.
class TierGuard {
 public:
  explicit TierGuard(TextconvTier tier) { set_textconv_tier(tier); }
  ~TierGuard() { set_textconv_tier(detect_textconv_tier()); }
};

TEST(TextconvTiers, KillSwitchAndOverride) {
  TierGuard guard(TextconvTier::kScalar);
  EXPECT_FALSE(textconv_vectorized());
  set_textconv_tier(detect_textconv_tier());
#if defined(__SSE2__)
  EXPECT_EQ(textconv_tier(), TextconvTier::kSse2);
#else
  EXPECT_EQ(textconv_tier(), TextconvTier::kSwar);
#endif
  EXPECT_TRUE(textconv_vectorized());
}

TEST(TextconvTiers, IntegerBoundariesMatchScalar) {
  TierGuard guard(detect_textconv_tier());
  char fast[kMaxInt64Chars + 8];
  char ref[kMaxInt64Chars];
  // 10^k - 1, 10^k, 10^k + 1 for every k: the digit-width estimate's only
  // interesting inputs, and the head/group splits in write_u64.
  std::uint64_t p = 1;
  for (int k = 0; k <= 19; ++k) {
    for (const std::uint64_t v : {p - 1, p, p + 1}) {
      const int lf = write_u64(fast, v);
      const int lr = scalar::write_u64(ref, v);
      ASSERT_EQ(lf, lr) << v;
      ASSERT_EQ(std::memcmp(fast, ref, static_cast<std::size_t>(lf)), 0) << v;
      if (v <= std::numeric_limits<std::uint32_t>::max()) {
        const std::uint32_t v32 = static_cast<std::uint32_t>(v);
        const int lf32 = write_u32(fast, v32);
        const int lr32 = scalar::write_u32(ref, v32);
        ASSERT_EQ(lf32, lr32) << v32;
        ASSERT_EQ(std::memcmp(fast, ref, static_cast<std::size_t>(lf32)), 0);
      }
    }
    if (k < 19) p *= 10;
  }
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1},
        static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::min()),
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    const int lf = write_i64(fast, v);
    const int lr = scalar::write_i64(ref, v);
    ASSERT_EQ(lf, lr) << v;
    ASSERT_EQ(std::memcmp(fast, ref, static_cast<std::size_t>(lf)), 0) << v;
  }
  const std::uint64_t umax = std::numeric_limits<std::uint64_t>::max();
  ASSERT_EQ(write_u64(fast, umax), scalar::write_u64(ref, umax));
  ASSERT_EQ(std::memcmp(fast, ref, 20), 0);
}

TEST(TextconvTiers, IntegerRandomSweepMatchesScalar) {
  TierGuard guard(detect_textconv_tier());
  Rng rng(2024);
  char fast[kMaxInt64Chars + 8];
  char ref[kMaxInt64Chars];
  for (int i = 0; i < 200000; ++i) {
    // Stratify across digit counts: raw next_u64 almost never produces
    // short numbers.
    const std::uint64_t raw = rng.next_u64();
    const std::uint64_t v =
        i % 20 == 19 ? raw : raw % swar::kPow10U64[1 + i % 19];
    const int lf = write_u64(fast, v);
    const int lr = scalar::write_u64(ref, v);
    ASSERT_EQ(lf, lr) << v;
    ASSERT_EQ(std::memcmp(fast, ref, static_cast<std::size_t>(lf)), 0) << v;
    const std::int32_t s32 = rng.next_i32();
    const int lf32 = write_i32(fast, s32);
    const int lr32 = scalar::write_i32(ref, s32);
    ASSERT_EQ(lf32, lr32) << s32;
    ASSERT_EQ(std::memcmp(fast, ref, static_cast<std::size_t>(lf32)), 0);
  }
}

TEST(TextconvTiers, DoubleSpotValuesMatchScalar) {
  TierGuard guard(detect_textconv_tier());
  char fast[kMaxDoubleChars + 8];
  char ref[kMaxDoubleChars];
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          0.1,
                          3.14,
                          -2.5,
                          1e22,
                          1e-7,
                          5e-324,  // smallest subnormal
                          -2.2250738585072014e-308,
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN()};
  for (const double v : cases) {
    const int lf = write_double(fast, v);
    const int lr = scalar::write_double(ref, v);
    ASSERT_EQ(lf, lr) << v;
    ASSERT_EQ(std::memcmp(fast, ref, static_cast<std::size_t>(lf)), 0) << v;
  }
}

TEST(TextconvTiers, DoubleRandomSweepMatchesScalar) {
  TierGuard guard(detect_textconv_tier());
  Rng rng(2025);
  char fast[kMaxDoubleChars + 8];
  char ref[kMaxDoubleChars];
  for (int i = 0; i < 300000; ++i) {
    double v;
    if (i % 10 == 9) {
      // Subnormals and near-boundary exponents.
      const std::uint64_t bits = rng.next_u64() & 0x800fffffffffffffull;
      std::memcpy(&v, &bits, sizeof(v));
    } else {
      v = rng.next_finite_double();
    }
    const int lf = write_double(fast, v);
    const int lr = scalar::write_double(ref, v);
    ASSERT_EQ(lf, lr) << v;
    ASSERT_EQ(std::memcmp(fast, ref, static_cast<std::size_t>(lf)), 0) << v;
  }
}

TEST(SwarKernels, ExactStoresNeverWritePastLength) {
  // store_exact / fill_* promise to write exactly n bytes; a wide store
  // that strayed past the end would corrupt the closing tag of a stuffed
  // field. Sentinel bytes around the target region catch any stray write.
  char buf[48];
  for (unsigned n = 0; n <= 8; ++n) {
    std::memset(buf, '#', sizeof(buf));
    swar::store_exact(buf + 8, 0x3132333435363738ull, n);
    for (unsigned i = 0; i < n; ++i) EXPECT_EQ(buf[8 + i], '8' - static_cast<char>(i));
    EXPECT_EQ(buf[8 + n], '#') << n;
    EXPECT_EQ(buf[7], '#');
  }
  for (unsigned n = 0; n <= 24; ++n) {
    std::memset(buf, '#', sizeof(buf));
    swar::fill_spaces(buf + 8, n);
    for (unsigned i = 0; i < n; ++i) EXPECT_EQ(buf[8 + i], ' ');
    EXPECT_EQ(buf[8 + n], '#') << n;
    std::memset(buf, '#', sizeof(buf));
    swar::fill_zeros(buf + 8, n);
    for (unsigned i = 0; i < n; ++i) EXPECT_EQ(buf[8 + i], '0');
    EXPECT_EQ(buf[8 + n], '#') << n;
  }
  // copy_digits: dst written for exactly n (src readable 8 past, which the
  // 48-byte buffer provides).
  const char src[32] = "abcdefghijklmnopqrstu";
  for (unsigned n = 0; n <= 20; ++n) {
    std::memset(buf, '#', sizeof(buf));
    swar::copy_digits(buf + 8, src, n);
    for (unsigned i = 0; i < n; ++i) EXPECT_EQ(buf[8 + i], src[i]);
    EXPECT_EQ(buf[8 + n], '#') << n;
  }
}

TEST(SwarKernels, Ascii8AllDigitPairs) {
  // ascii8's lane algebra against the obvious reference, at every 2-digit
  // pair in every lane position plus random values.
  Rng rng(99);
  for (int i = 0; i < 200000; ++i) {
    const std::uint32_t v = static_cast<std::uint32_t>(rng.next_below(100000000));
    const std::uint64_t packed = swar::ascii8(v);
    char expect[9];
    std::snprintf(expect, sizeof(expect), "%08u", v);
    char got[8];
    swar::store8(got, packed);
    ASSERT_EQ(std::memcmp(got, expect, 8), 0) << v;
  }
}

}  // namespace
}  // namespace bsoap::textconv
