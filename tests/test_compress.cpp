// Tests for the DEFLATE/gzip substrate: round trips over many data shapes,
// interop with a reference gzip stream, bounds and error handling.
#include <gtest/gtest.h>

#include <string>

#include "buffer/sinks.hpp"
#include "common/rng.hpp"
#include "compress/deflate.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"

namespace bsoap::compress {
namespace {

std::string round_trip(std::string_view input) {
  const std::string compressed = deflate(input);
  Result<std::string> back = inflate(compressed);
  EXPECT_TRUE(back.ok()) << (back.ok() ? "" : back.error().to_string());
  return back.ok() ? back.value() : std::string();
}

TEST(Deflate, EmptyInput) { EXPECT_EQ(round_trip(""), ""); }

TEST(Deflate, ShortLiterals) {
  EXPECT_EQ(round_trip("a"), "a");
  EXPECT_EQ(round_trip("hello, world"), "hello, world");
  EXPECT_EQ(round_trip(std::string("\0\x01\x02", 3)), std::string("\0\x01\x02", 3));
}

TEST(Deflate, HighlyCompressible) {
  const std::string runs(100000, 'x');
  const std::string compressed = deflate(runs);
  EXPECT_LT(compressed.size(), runs.size() / 50);  // runs compress hard
  EXPECT_EQ(round_trip(runs), runs);
}

TEST(Deflate, RepeatedPhrase) {
  std::string text;
  for (int i = 0; i < 2000; ++i) {
    text += "<item>3.14159</item>";
  }
  const std::string compressed = deflate(text);
  EXPECT_LT(compressed.size(), text.size() / 10);
  EXPECT_EQ(round_trip(text), text);
}

TEST(Deflate, IncompressibleRandomBytes) {
  Rng rng(1);
  std::string noise;
  for (int i = 0; i < 50000; ++i) {
    noise += static_cast<char>(rng.next_below(256));
  }
  // Fixed-Huffman literals cost slightly over 8 bits each; random data
  // expands a little but must round-trip exactly.
  EXPECT_EQ(round_trip(noise), noise);
}

TEST(Deflate, OverlappingCopies) {
  // RLE-style: distance 1, long length (the classic overlap case).
  std::string text = "ab";
  text.append(1000, 'b');
  text += "tail";
  EXPECT_EQ(round_trip(text), text);
}

TEST(Deflate, LongDistanceMatches) {
  // A phrase recurring past various distance-code boundaries.
  std::string text = "THE-UNIQUE-PHRASE-0123456789";
  text.append(20000, '.');
  text += "THE-UNIQUE-PHRASE-0123456789";
  text.append(12000, ',');
  text += "THE-UNIQUE-PHRASE-0123456789";
  EXPECT_EQ(round_trip(text), text);
}

TEST(Deflate, RandomizedRoundTrip) {
  Rng rng(77);
  for (int round = 0; round < 40; ++round) {
    std::string text;
    const std::size_t n = rng.next_below(20000);
    // Mix of random bytes and repeated slices for realistic LZ action.
    while (text.size() < n) {
      if (rng.chance(1, 3) && !text.empty()) {
        const std::size_t start = rng.next_below(text.size());
        const std::size_t len =
            std::min<std::size_t>(rng.next_below(300), text.size() - start);
        text += text.substr(start, len);
      } else {
        text += static_cast<char>(rng.next_below(256));
      }
    }
    ASSERT_EQ(round_trip(text), text) << "round " << round;
  }
}

TEST(Deflate, SoapEnvelopeCompresses) {
  buffer::StringSink sink;
  soap::write_rpc_envelope(
      sink, soap::make_double_array_call(soap::random_unit_doubles(5000, 3)));
  const std::string envelope = sink.take();
  const std::string compressed = deflate(envelope);
  EXPECT_LT(compressed.size(), envelope.size() / 2);  // tags compress well
  EXPECT_EQ(round_trip(envelope), envelope);
}

TEST(Inflate, StoredBlock) {
  // Hand-built stored block: BFINAL=1, BTYPE=00, LEN=5, NLEN=~5, "hello".
  std::string raw;
  raw += static_cast<char>(0x01);
  raw += static_cast<char>(0x05);
  raw += static_cast<char>(0x00);
  raw += static_cast<char>(0xFA);
  raw += static_cast<char>(0xFF);
  raw += "hello";
  Result<std::string> out = inflate(raw);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(out.value(), "hello");
}

TEST(Inflate, DynamicHuffmanBlockInterop) {
  // A zlib-produced DEFLATE stream (dynamic Huffman) for the text below,
  // captured as a fixture: python3 -c "import zlib;
  //   print(zlib.compress(b'the quick brown fox jumps over the lazy dog. '
  //         b'the quick brown fox jumps over the lazy dog.',9)[2:-4].hex())"
  const char kHex[] =
      "2bc94855282ccd4cce56482aca2fcf5348cbaf50c82acd2d2856c82f4b2d5228"
      "014ae72456552aa4e4a7eb8179c42a0600";
  std::string raw;
  for (std::size_t i = 0; kHex[i] != '\0'; i += 2) {
    auto nibble = [](char c) {
      return c <= '9' ? c - '0' : c - 'a' + 10;
    };
    raw += static_cast<char>((nibble(kHex[i]) << 4) | nibble(kHex[i + 1]));
  }
  Result<std::string> out = inflate(raw);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(out.value(),
            "the quick brown fox jumps over the lazy dog. "
            "the quick brown fox jumps over the lazy dog.");
}

TEST(Inflate, RejectsGarbage) {
  EXPECT_FALSE(inflate("").ok());
  EXPECT_FALSE(inflate("\x07garbage").ok());  // BTYPE=11 reserved
}

TEST(Inflate, OutputLimitEnforced) {
  const std::string bomb = deflate(std::string(1 << 20, 'z'));
  EXPECT_FALSE(inflate(bomb, 1024).ok());
  EXPECT_TRUE(inflate(bomb, 1 << 21).ok());
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);  // the classic check value
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Gzip, RoundTrip) {
  Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    std::string text;
    const std::size_t n = rng.next_below(30000);
    for (std::size_t i = 0; i < n; ++i) {
      text += static_cast<char>('a' + rng.next_below(8));
    }
    const std::string gz = gzip_compress(text);
    EXPECT_EQ(gz.substr(0, 2), std::string("\x1f\x8b"));
    Result<std::string> back = gzip_decompress(gz);
    ASSERT_TRUE(back.ok()) << back.error().to_string();
    EXPECT_EQ(back.value(), text);
  }
}

TEST(Gzip, DetectsCorruption) {
  std::string gz = gzip_compress("payload payload payload");
  gz[gz.size() - 1] ^= 0x01;  // flip a bit in ISIZE
  EXPECT_FALSE(gzip_decompress(gz).ok());

  std::string gz2 = gzip_compress("payload payload payload");
  gz2[gz2.size() - 5] ^= 0x01;  // flip a bit in CRC
  EXPECT_FALSE(gzip_decompress(gz2).ok());

  EXPECT_FALSE(gzip_decompress("not gzip at all").ok());
}

TEST(Gzip, ReferenceStreamInterop) {
  // python3 -c "import gzip; print(gzip.compress(b'interop test', 9,
  //   mtime=0).hex())"
  const char kHex[] =
      "1f8b0800000000000203cbcc2b492dca2f5028492d2e0100f5e589850c000000";
  std::string raw;
  for (std::size_t i = 0; kHex[i] != '\0' && kHex[i + 1] != '\0'; i += 2) {
    auto nibble = [](char c) {
      return c <= '9' ? c - '0' : c - 'a' + 10;
    };
    raw += static_cast<char>((nibble(kHex[i]) << 4) | nibble(kHex[i + 1]));
  }
  Result<std::string> out = gzip_decompress(raw);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(out.value(), "interop test");
}

}  // namespace
}  // namespace bsoap::compress
