// Envelope round-trip tests: writer -> reader must reproduce the call, for
// every value kind, for both the conventional serializer and the XSOAP-like
// baseline's output.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "buffer/sinks.hpp"
#include "common/rng.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/soap_server.hpp"
#include "soap/workload.hpp"

namespace bsoap::soap {
namespace {

std::string serialize(const RpcCall& call) {
  buffer::StringSink sink;
  write_rpc_envelope(sink, call);
  return sink.take();
}

RpcCall round_trip(const RpcCall& call) {
  Result<RpcCall> parsed = read_rpc_envelope(serialize(call));
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().to_string());
  return parsed.ok() ? parsed.value() : RpcCall{};
}

TEST(Envelope, WriterOutputShape) {
  RpcCall call;
  call.method = "echo";
  call.service_namespace = "urn:test";
  call.params.push_back(Param{"x", Value::from_int(5)});
  const std::string doc = serialize(call);
  EXPECT_NE(doc.find("<?xml version=\"1.0\""), std::string::npos);
  EXPECT_NE(doc.find("<SOAP-ENV:Envelope"), std::string::npos);
  EXPECT_NE(doc.find("<SOAP-ENV:Body>"), std::string::npos);
  EXPECT_NE(doc.find("<ns1:echo xmlns:ns1=\"urn:test\">"), std::string::npos);
  EXPECT_NE(doc.find("<x xsi:type=\"xsd:int\">5</x>"), std::string::npos);
  EXPECT_NE(doc.find("</SOAP-ENV:Envelope>"), std::string::npos);
}

TEST(Envelope, ScalarRoundTrip) {
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  call.params.push_back(Param{"i", Value::from_int(-7)});
  call.params.push_back(Param{"l", Value::from_int64(1ll << 60)});
  call.params.push_back(Param{"d", Value::from_double(3.25)});
  call.params.push_back(Param{"b", Value::from_bool(true)});
  call.params.push_back(Param{"s", Value::from_string("hi <&> there")});

  const RpcCall parsed = round_trip(call);
  EXPECT_EQ(parsed.method, "m");
  EXPECT_EQ(parsed.service_namespace, "urn:s");
  ASSERT_EQ(parsed.params.size(), 5u);
  EXPECT_EQ(parsed.params[0].value.as_int(), -7);
  EXPECT_EQ(parsed.params[1].value.as_int64(), 1ll << 60);
  EXPECT_EQ(parsed.params[2].value.as_double(), 3.25);
  EXPECT_TRUE(parsed.params[3].value.as_bool());
  EXPECT_EQ(parsed.params[4].value.as_string(), "hi <&> there");
}

TEST(Envelope, DoubleArrayRoundTripExact) {
  const auto values = random_doubles(500, 9001);
  const RpcCall parsed = round_trip(make_double_array_call(values));
  ASSERT_EQ(parsed.params.size(), 1u);
  const auto& back = parsed.params[0].value.doubles();
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&back[i], &values[i], sizeof(double)), 0) << i;
  }
}

TEST(Envelope, IntArrayRoundTrip) {
  const auto values = random_ints(300, 77);
  const RpcCall parsed = round_trip(make_int_array_call(values));
  EXPECT_EQ(parsed.params[0].value.ints(), values);
}

TEST(Envelope, MioArrayRoundTrip) {
  const auto values = random_mios(200, 123);
  const RpcCall parsed = round_trip(make_mio_array_call(values));
  EXPECT_EQ(parsed.params[0].value.mios(), values);
}

TEST(Envelope, EmptyArray) {
  const RpcCall parsed = round_trip(make_double_array_call({}));
  EXPECT_TRUE(parsed.params[0].value.doubles().empty());
}

TEST(Envelope, NestedStructRoundTrip) {
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  Value outer = Value::make_struct();
  outer.add_member("name", Value::from_string("job-1"));
  Value inner = Value::make_struct();
  inner.add_member("retries", Value::from_int(3));
  inner.add_member("timeout", Value::from_double(1.5));
  outer.add_member("config", inner);
  outer.add_member("grid", Value::from_double_array({0.5, 1.5}));
  call.params.push_back(Param{"job", outer});

  const RpcCall parsed = round_trip(call);
  const Value& job = parsed.params[0].value;
  ASSERT_EQ(job.kind(), ValueKind::kStruct);
  ASSERT_EQ(job.members().size(), 3u);
  EXPECT_EQ(job.members()[0].value.as_string(), "job-1");
  EXPECT_EQ(job.members()[1].value.members()[1].value.as_double(), 1.5);
  EXPECT_EQ(job.members()[2].value.doubles(), (std::vector<double>{0.5, 1.5}));
}

TEST(Envelope, SpecialDoubles) {
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  call.params.push_back(Param{
      "d", Value::from_double_array(
               {std::numeric_limits<double>::infinity(),
                -std::numeric_limits<double>::infinity(), -0.0, 5e-324})});
  const RpcCall parsed = round_trip(call);
  const auto& d = parsed.params[0].value.doubles();
  EXPECT_TRUE(std::isinf(d[0]) && d[0] > 0);
  EXPECT_TRUE(std::isinf(d[1]) && d[1] < 0);
  EXPECT_TRUE(d[2] == 0.0 && std::signbit(d[2]));
  EXPECT_EQ(d[3], 5e-324);
}

TEST(Envelope, WhitespaceStuffedValuesParse) {
  // Whitespace padding (stuffing) is explicitly legal; the reader trims.
  const std::string doc =
      "<?xml version=\"1.0\"?><SOAP-ENV:Envelope><SOAP-ENV:Body>"
      "<ns1:m xmlns:ns1=\"urn:s\">"
      "<data xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"xsd:double[2]\">"
      "<item>1.5</item>      <item>2.5   </item>"
      "</data></ns1:m></SOAP-ENV:Body></SOAP-ENV:Envelope>";
  Result<RpcCall> parsed = read_rpc_envelope(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().params[0].value.doubles(),
            (std::vector<double>{1.5, 2.5}));
}

TEST(Envelope, HeaderSkipped) {
  const std::string doc =
      "<SOAP-ENV:Envelope><SOAP-ENV:Header><t:tx xmlns:t=\"u\">9</t:tx>"
      "</SOAP-ENV:Header><SOAP-ENV:Body><ns1:m xmlns:ns1=\"urn:s\">"
      "<x xsi:type=\"xsd:int\">1</x></ns1:m></SOAP-ENV:Body>"
      "</SOAP-ENV:Envelope>";
  Result<RpcCall> parsed = read_rpc_envelope(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().method, "m");
  EXPECT_EQ(parsed.value().params[0].value.as_int(), 1);
}

TEST(Envelope, Errors) {
  EXPECT_FALSE(read_rpc_envelope("").ok());
  EXPECT_FALSE(read_rpc_envelope("<NotEnvelope/>").ok());
  EXPECT_FALSE(read_rpc_envelope("<SOAP-ENV:Envelope></SOAP-ENV:Envelope>").ok());
  // Bad lexical in a typed field.
  const std::string bad_int =
      "<SOAP-ENV:Envelope><SOAP-ENV:Body><ns1:m xmlns:ns1=\"u\">"
      "<x xsi:type=\"xsd:int\">forty</x></ns1:m></SOAP-ENV:Body>"
      "</SOAP-ENV:Envelope>";
  EXPECT_FALSE(read_rpc_envelope(bad_int).ok());
  // Array with unsupported element type.
  const std::string bad_array =
      "<SOAP-ENV:Envelope><SOAP-ENV:Body><ns1:m xmlns:ns1=\"u\">"
      "<a xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"xsd:date[1]\">"
      "<item>x</item></a></ns1:m></SOAP-ENV:Body></SOAP-ENV:Envelope>";
  EXPECT_FALSE(read_rpc_envelope(bad_array).ok());
}

TEST(Envelope, ResponseAndFaultHelpers) {
  const std::string response_doc =
      serialize_rpc_response("solve", "urn:s", Value::from_double(42.5));
  Result<RpcCall> parsed = read_rpc_envelope(response_doc);
  ASSERT_TRUE(parsed.ok());
  Result<Value> result = extract_rpc_result(parsed.value(), "solve");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().as_double(), 42.5);

  EXPECT_FALSE(extract_rpc_result(parsed.value(), "otherMethod").ok());

  const std::string fault_doc =
      serialize_rpc_fault("SOAP-ENV:Server", "boom");
  Result<RpcCall> fault = read_rpc_envelope(fault_doc);
  ASSERT_TRUE(fault.ok());
  Result<Value> fault_result = extract_rpc_result(fault.value(), "solve");
  EXPECT_FALSE(fault_result.ok());
  EXPECT_NE(fault_result.error().message.find("boom"), std::string::npos);
}

TEST(Envelope, CdataAndNumericEntitiesInStrings) {
  const std::string doc =
      "<SOAP-ENV:Envelope><SOAP-ENV:Body><ns1:m xmlns:ns1=\"u\">"
      "<a xsi:type=\"xsd:string\"><![CDATA[raw <markup> & stuff]]></a>"
      "<b xsi:type=\"xsd:string\">&#65;&#x42;</b>"
      "</ns1:m></SOAP-ENV:Body></SOAP-ENV:Envelope>";
  Result<RpcCall> parsed = read_rpc_envelope(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().params[0].value.as_string(),
            "raw <markup> & stuff");
  EXPECT_EQ(parsed.value().params[1].value.as_string(), "AB");
}

TEST(Envelope, ScalarWhitespacePaddingTrimmed) {
  // Stuffed scalars arrive with padding around the lexical.
  const std::string doc =
      "<SOAP-ENV:Envelope><SOAP-ENV:Body><ns1:m xmlns:ns1=\"u\">"
      "<x xsi:type=\"xsd:int\">   42   </x>"
      "<d xsi:type=\"xsd:double\">\n\t2.5\n</d>"
      "</ns1:m></SOAP-ENV:Body></SOAP-ENV:Envelope>";
  Result<RpcCall> parsed = read_rpc_envelope(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().params[0].value.as_int(), 42);
  EXPECT_EQ(parsed.value().params[1].value.as_double(), 2.5);
}

TEST(MultiRef, SharedStructSerializedOnce) {
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  Value shared = Value::make_struct();
  shared.add_member("host", Value::from_string("node1.example.org"));
  shared.add_member("port", Value::from_int(8080));
  call.params.push_back(Param{"primary", shared});
  call.params.push_back(Param{"backup", shared});
  call.params.push_back(Param{"count", Value::from_int(2)});

  buffer::StringSink sink;
  write_rpc_envelope_multiref(sink, call);
  const std::string doc = sink.take();
  // The struct body appears once; both uses are hrefs.
  EXPECT_EQ(doc.find("node1.example.org"),
            doc.rfind("node1.example.org"));
  EXPECT_NE(doc.find("<primary href=\"#ref-1\"/>"), std::string::npos);
  EXPECT_NE(doc.find("<backup href=\"#ref-1\"/>"), std::string::npos);
  EXPECT_NE(doc.find("<multiRef id=\"ref-1\">"), std::string::npos);

  // And it decodes back to the full call.
  Result<RpcCall> parsed = read_rpc_envelope(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_TRUE(parsed.value().params[0].value == shared);
  EXPECT_TRUE(parsed.value().params[1].value == shared);
  EXPECT_EQ(parsed.value().params[2].value.as_int(), 2);
}

TEST(MultiRef, SharedStringsAboveThreshold) {
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  call.params.push_back(
      Param{"a", Value::from_string("a shared long string value")});
  call.params.push_back(
      Param{"b", Value::from_string("a shared long string value")});
  call.params.push_back(Param{"c", Value::from_string("hi")});
  call.params.push_back(Param{"d", Value::from_string("hi")});

  buffer::StringSink sink;
  write_rpc_envelope_multiref(sink, call);
  const std::string doc = sink.take();
  EXPECT_NE(doc.find("href=\"#ref-1\""), std::string::npos);
  // Short strings stay inline (below min_string_length).
  EXPECT_EQ(doc.find("href=\"#ref-2\""), std::string::npos);

  Result<RpcCall> parsed = read_rpc_envelope(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().params[1].value.as_string(),
            "a shared long string value");
  EXPECT_EQ(parsed.value().params[3].value.as_string(), "hi");
}

TEST(MultiRef, NoSharingFallsBackToPlainEncoding) {
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  call.params.push_back(Param{"x", Value::from_int(1)});
  buffer::StringSink multiref_sink;
  write_rpc_envelope_multiref(multiref_sink, call);
  buffer::StringSink plain_sink;
  write_rpc_envelope(plain_sink, call);
  EXPECT_EQ(multiref_sink.str(), plain_sink.str());
}

TEST(MultiRef, UnresolvedHrefFails) {
  const std::string doc =
      "<SOAP-ENV:Envelope><SOAP-ENV:Body><ns1:m xmlns:ns1=\"u\">"
      "<x href=\"#nope\"/></ns1:m></SOAP-ENV:Body></SOAP-ENV:Envelope>";
  EXPECT_FALSE(read_rpc_envelope(doc).ok());
}

TEST(MultiRef, ForwardAndBackwardReferences) {
  // Definition placed before the method element also resolves (the
  // collector pre-pass is order-independent).
  const std::string doc =
      "<SOAP-ENV:Envelope><SOAP-ENV:Body>"
      "<multiRef id=\"r\" xsi:type=\"xsd:string\">shared-text</multiRef>"
      "<ns1:m xmlns:ns1=\"u\"><x href=\"#r\"/><y href=\"#r\"/></ns1:m>"
      "</SOAP-ENV:Body></SOAP-ENV:Envelope>";
  Result<RpcCall> parsed = read_rpc_envelope(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().params[0].value.as_string(), "shared-text");
  EXPECT_EQ(parsed.value().params[1].value.as_string(), "shared-text");
}

TEST(Envelope, FuzzRandomCallsRoundTrip) {
  Rng rng(4242);
  for (int round = 0; round < 100; ++round) {
    RpcCall call;
    call.method = "m" + std::to_string(rng.next_below(5));
    call.service_namespace = "urn:fuzz";
    const std::size_t params = 1 + rng.next_below(4);
    for (std::size_t p = 0; p < params; ++p) {
      const std::string name = "p" + std::to_string(p);
      switch (rng.next_below(6)) {
        case 0:
          call.params.push_back(Param{name, Value::from_int(rng.next_i32())});
          break;
        case 1:
          call.params.push_back(
              Param{name, Value::from_double(Rng(rng.next_u64()).next_finite_double())});
          break;
        case 2:
          call.params.push_back(Param{
              name, Value::from_string(std::string(rng.next_below(20), '&'))});
          break;
        case 3:
          call.params.push_back(Param{
              name, Value::from_double_array(
                        random_doubles(rng.next_below(50), rng.next_u64()))});
          break;
        case 4:
          call.params.push_back(
              Param{name, Value::from_int_array(
                              random_ints(rng.next_below(50), rng.next_u64()))});
          break;
        default:
          call.params.push_back(
              Param{name, Value::from_mio_array(
                              random_mios(rng.next_below(30), rng.next_u64()))});
          break;
      }
    }
    const RpcCall parsed = round_trip(call);
    ASSERT_EQ(parsed.params.size(), call.params.size());
    for (std::size_t p = 0; p < params; ++p) {
      EXPECT_TRUE(parsed.params[p].value == call.params[p].value)
          << "round " << round << " param " << p;
    }
  }
}

}  // namespace
}  // namespace bsoap::soap
