// Tests for the differential serializer: the four matching cases from the
// paper, comparison-driven and dirty-bit-driven updates, and equivalence
// with from-scratch serialization as the oracle.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/rng.hpp"
#include "core/diff_serializer.hpp"
#include "core/template_builder.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/workload.hpp"

namespace bsoap::core {
namespace {

using soap::RpcCall;
using soap::Value;

TemplateConfig exact_config() {
  TemplateConfig config;
  config.stuffing.mode = StuffingPolicy::Mode::kExact;
  return config;
}

RpcCall parse_template(MessageTemplate& tmpl) {
  Result<RpcCall> parsed = soap::read_rpc_envelope(tmpl.buffer().linearize());
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().to_string());
  return parsed.ok() ? parsed.value() : RpcCall{};
}

TEST(UpdateTemplate, ContentMatchWhenNothingChanged) {
  const RpcCall call = soap::make_double_array_call(soap::random_doubles(50, 1));
  auto tmpl = build_template(call, exact_config());
  const std::string before = tmpl->buffer().linearize();
  const UpdateResult result = update_template(*tmpl, call);
  EXPECT_EQ(result.match, MatchKind::kContentMatch);
  EXPECT_EQ(result.values_rewritten, 0u);
  EXPECT_EQ(tmpl->buffer().linearize(), before);
}

TEST(UpdateTemplate, PerfectStructuralMatchSameSizes) {
  // Same serialized sizes for every element: no expansion, no size change —
  // the paper's "perfect structural match" experiment setup.
  auto v1 = soap::doubles_with_serialized_length(100, 18, 2);
  auto v2 = soap::doubles_with_serialized_length(100, 18, 3);
  auto tmpl = build_template(soap::make_double_array_call(v1), exact_config());
  const std::size_t size_before = tmpl->buffer().total_size();

  const UpdateResult result =
      update_template(*tmpl, soap::make_double_array_call(v2));
  EXPECT_EQ(result.match, MatchKind::kPerfectStructural);
  EXPECT_EQ(result.values_rewritten, 100u);
  EXPECT_EQ(result.expansions, 0u);
  EXPECT_EQ(tmpl->buffer().total_size(), size_before);
  EXPECT_EQ(parse_template(*tmpl).params[0].value.doubles(), v2);
}

TEST(UpdateTemplate, PartialRewriteCountsOnlyChanged) {
  auto values = soap::doubles_with_serialized_length(100, 18, 4);
  auto tmpl =
      build_template(soap::make_double_array_call(values), exact_config());
  // Change 25 of 100 values.
  auto replacement = soap::doubles_with_serialized_length(25, 18, 5);
  for (int i = 0; i < 25; ++i) values[static_cast<std::size_t>(i * 4)] = replacement[static_cast<std::size_t>(i)];
  const UpdateResult result =
      update_template(*tmpl, soap::make_double_array_call(values));
  EXPECT_EQ(result.values_rewritten, 25u);
  EXPECT_EQ(result.match, MatchKind::kPerfectStructural);
  EXPECT_EQ(parse_template(*tmpl).params[0].value.doubles(), values);
}

TEST(UpdateTemplate, PartialStructuralMatchOnGrowth) {
  auto values = soap::doubles_with_serialized_length(50, 1, 6);
  TemplateConfig config = exact_config();
  config.enable_stealing = false;
  auto tmpl = build_template(soap::make_double_array_call(values), config);
  values[10] = -2.2250738585072014e-308;  // 24 chars: forces expansion
  const UpdateResult result =
      update_template(*tmpl, soap::make_double_array_call(values));
  EXPECT_EQ(result.match, MatchKind::kPartialStructural);
  EXPECT_EQ(result.expansions, 1u);
  EXPECT_EQ(parse_template(*tmpl).params[0].value.doubles(), values);
}

TEST(UpdateTemplate, BitwiseDoubleComparison) {
  // -0.0 vs 0.0 must be treated as a change (their lexicals differ).
  auto tmpl =
      build_template(soap::make_double_array_call({0.0}), exact_config());
  const UpdateResult result =
      update_template(*tmpl, soap::make_double_array_call({-0.0}));
  EXPECT_EQ(result.values_rewritten, 1u);
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_TRUE(std::signbit(parsed.params[0].value.doubles()[0]));
}

TEST(UpdateTemplate, MioArrays) {
  auto mios = soap::random_mios(40, 7);
  auto tmpl =
      build_template(soap::make_mio_array_call(mios), exact_config());
  // Change the field value of every other MIO, keep coordinates.
  for (std::size_t i = 0; i < mios.size(); i += 2) {
    mios[i].value = mios[i].value * 0.5;
  }
  const UpdateResult result =
      update_template(*tmpl, soap::make_mio_array_call(mios));
  EXPECT_EQ(result.values_rewritten, 20u);
  EXPECT_EQ(parse_template(*tmpl).params[0].value.mios(), mios);
}

TEST(UpdateTemplate, StringsAndStructs) {
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  Value st = Value::make_struct();
  st.add_member("name", Value::from_string("alpha"));
  st.add_member("count", Value::from_int(10));
  call.params.push_back(soap::Param{"meta", st});
  call.params.push_back(soap::Param{"flag", Value::from_bool(false)});
  auto tmpl = build_template(call, exact_config());

  call.params[0].value.members()[0].value = Value::from_string("beta & co");
  call.params[1].value = Value::from_bool(true);
  const UpdateResult result = update_template(*tmpl, call);
  EXPECT_EQ(result.values_rewritten, 2u);
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.members()[0].value.as_string(), "beta & co");
  EXPECT_EQ(parsed.params[0].value.members()[1].value.as_int(), 10);
  EXPECT_TRUE(parsed.params[1].value.as_bool());
}

TEST(UpdateTemplate, NanComparesBitwise) {
  // NaN != NaN numerically, but the shadow comparison is bitwise: sending
  // the same NaN payload again must be a content match, not an endless
  // rewrite of identical lexicals.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto tmpl = build_template(soap::make_double_array_call({1.0, nan, 3.0}),
                             exact_config());
  const UpdateResult same =
      update_template(*tmpl, soap::make_double_array_call({1.0, nan, 3.0}));
  EXPECT_EQ(same.match, MatchKind::kContentMatch);
  EXPECT_EQ(same.values_rewritten, 0u);

  // A different NaN bit pattern IS a change even though both print "nan".
  const double other_nan = std::bit_cast<double>(
      std::bit_cast<std::uint64_t>(nan) | 1u);
  const UpdateResult changed = update_template(
      *tmpl, soap::make_double_array_call({1.0, other_nan, 3.0}));
  EXPECT_EQ(changed.values_rewritten, 1u);
}

TEST(UpdateTemplate, BoolShadowTransitions) {
  // false->true->false must round-trip: "false" (5 chars) shrinks to
  // "true" (4 chars, padded) and grows back within the original width.
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  call.params.push_back(soap::Param{"flag", Value::from_bool(false)});
  auto tmpl = build_template(call, exact_config());

  call.params[0].value = Value::from_bool(true);
  EXPECT_EQ(update_template(*tmpl, call).values_rewritten, 1u);
  EXPECT_TRUE(parse_template(*tmpl).params[0].value.as_bool());
  // Same value again: shadow must have been updated, so no rewrite.
  EXPECT_EQ(update_template(*tmpl, call).values_rewritten, 0u);

  call.params[0].value = Value::from_bool(false);
  EXPECT_EQ(update_template(*tmpl, call).values_rewritten, 1u);
  EXPECT_FALSE(parse_template(*tmpl).params[0].value.as_bool());
  EXPECT_TRUE(tmpl->check_invariants());
}

TEST(UpdateTemplate, StringGrowsPastFieldWidth) {
  // A replacement string longer than the stuffed field (including one whose
  // escaped form grows further) must force expansion and still parse back.
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  call.params.push_back(soap::Param{"name", Value::from_string("ab")});
  call.params.push_back(soap::Param{"tail", Value::from_int(7)});
  TemplateConfig config = exact_config();
  config.enable_stealing = false;
  auto tmpl = build_template(call, config);

  call.params[0].value =
      Value::from_string("a much longer value with <angle> & ampersand");
  const UpdateResult result = update_template(*tmpl, call);
  EXPECT_EQ(result.match, MatchKind::kPartialStructural);
  EXPECT_GE(result.expansions, 1u);
  const RpcCall parsed = parse_template(*tmpl);
  EXPECT_EQ(parsed.params[0].value.as_string(),
            "a much longer value with <angle> & ampersand");
  EXPECT_EQ(parsed.params[1].value.as_int(), 7);
  EXPECT_TRUE(tmpl->check_invariants());

  // Shrink back: must fit in the widened field with padding.
  call.params[0].value = Value::from_string("x");
  EXPECT_EQ(update_template(*tmpl, call).values_rewritten, 1u);
  EXPECT_EQ(parse_template(*tmpl).params[0].value.as_string(), "x");
}

TEST(UpdateDirtyFields, RewritesExactlyDirtyEntries) {
  auto values = soap::doubles_with_serialized_length(30, 18, 8);
  auto tmpl =
      build_template(soap::make_double_array_call(values), exact_config());
  // Mutate values 3 and 7 but only mark 3 dirty: field 7 must stay stale
  // (this is the contract of the explicit-tracking API).
  auto mutated = values;
  mutated[3] = soap::doubles_with_serialized_length(1, 18, 9)[0];
  mutated[7] = soap::doubles_with_serialized_length(1, 18, 10)[0];
  tmpl->dut().mark_dirty(3);
  const UpdateResult result =
      update_dirty_fields(*tmpl, soap::make_double_array_call(mutated));
  EXPECT_EQ(result.values_rewritten, 1u);
  EXPECT_FALSE(tmpl->dut().any_dirty());

  const auto back = parse_template(*tmpl).params[0].value.doubles();
  EXPECT_EQ(back[3], mutated[3]);
  EXPECT_EQ(back[7], values[7]);  // stale: was never marked
}

TEST(UpdateTemplate, RepeatedUpdatesConvergeToOracle) {
  // Long random update sequence; final parse must equal final values, and
  // shadows must keep matching so content-match detection works.
  Rng rng(5150);
  auto values = soap::random_unit_doubles(60, 11);
  auto tmpl =
      build_template(soap::make_double_array_call(values), exact_config());
  for (int step = 0; step < 50; ++step) {
    const std::size_t changes = rng.next_below(10);
    for (std::size_t c = 0; c < changes; ++c) {
      values[rng.next_below(values.size())] = Rng(rng.next_u64()).next_unit_double();
    }
    const UpdateResult result =
        update_template(*tmpl, soap::make_double_array_call(values));
    // After the update, an immediate re-update must be a content match.
    const UpdateResult again =
        update_template(*tmpl, soap::make_double_array_call(values));
    EXPECT_EQ(again.match, MatchKind::kContentMatch) << "step " << step;
    (void)result;
  }
  EXPECT_EQ(parse_template(*tmpl).params[0].value.doubles(), values);
  EXPECT_TRUE(tmpl->check_invariants());
}

TEST(MatchKindNames, Stable) {
  EXPECT_STREQ(match_kind_name(MatchKind::kContentMatch),
               "message content match");
  EXPECT_STREQ(match_kind_name(MatchKind::kFirstTime), "first-time send");
}

}  // namespace
}  // namespace bsoap::core
