// SharedTemplateCache: checkout-lease semantics, clone-on-contention, the
// per-signature replica bound, byte-budget eviction with leased pinning,
// O(1) byte accounting against the walking oracle, recovery interaction,
// and a multi-thread stress run (wired into the TSan CI job).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/send_pipeline.hpp"
#include "core/shared_template_cache.hpp"
#include "core/template_builder.hpp"
#include "http/connection.hpp"
#include "net/inmemory.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/workload.hpp"

namespace bsoap::core {
namespace {

using soap::RpcCall;

std::unique_ptr<MessageTemplate> make_template(std::size_t n,
                                               std::uint64_t seed) {
  return build_template(soap::make_double_array_call(soap::random_doubles(n, seed)),
                        TemplateConfig{});
}

TEST(SharedTemplateCache, MissPublishHitRoundTrip) {
  SharedTemplateCache cache;
  auto tmpl = make_template(20, 1);
  const std::uint64_t sig = tmpl->signature;

  EXPECT_FALSE(cache.checkout(sig));
  EXPECT_EQ(cache.stats().misses, 1u);

  {
    TemplateLease lease = cache.publish(std::move(tmpl));
    ASSERT_TRUE(lease);
    EXPECT_EQ(lease.signature(), sig);
    EXPECT_EQ(cache.replica_count(sig), 1u);
    // Leased: a checkout of the same signature finds everything out.
    EXPECT_FALSE(cache.checkout(sig));
    EXPECT_EQ(cache.stats().contended, 1u);
  }  // lease returns on destruction

  TemplateLease hit = cache.checkout(sig);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->signature, sig);
  EXPECT_EQ(cache.stats().hits, 1u);
  hit.release();
  EXPECT_EQ(cache.bytes_retained(), cache.debug_walk_free_bytes());
}

TEST(SharedTemplateCache, CloneProvisionsReplicaWhenLastFreeIsTaken) {
  SharedTemplateCache cache;
  const std::uint64_t sig = make_template(20, 2)->signature;

  // Two replicas resident (the second via a contended-miss publish).
  TemplateLease a = cache.publish(make_template(20, 2));
  TemplateLease b = cache.publish(make_template(20, 2));
  a.release();
  b.release();
  ASSERT_EQ(cache.replica_count(sig), 2u);

  // First checkout leaves one free replica: no clone needed.
  TemplateLease first = cache.checkout(sig);
  ASSERT_TRUE(first);
  EXPECT_EQ(cache.stats().clones, 0u);
  // Second checkout takes the last free one while another worker holds a
  // lease: a clone is provisioned so the next checkout still hits.
  TemplateLease second = cache.checkout(sig);
  ASSERT_TRUE(second);
  EXPECT_EQ(cache.stats().clones, 1u);
  EXPECT_EQ(cache.replica_count(sig), 3u);
  TemplateLease third = cache.checkout(sig);
  ASSERT_TRUE(third);

  // The clone is a faithful deep copy, independent of its origin.
  EXPECT_EQ(third->buffer().linearize(), second->buffer().linearize());
  EXPECT_TRUE(third->check_invariants());

  first.release();
  second.release();
  third.release();
  EXPECT_EQ(cache.bytes_retained(), cache.debug_walk_free_bytes());
}

TEST(SharedTemplateCache, ReplicaBoundRetiresSurplusOnReturn) {
  SharedTemplateCache::Options options;
  options.max_replicas = 2;
  SharedTemplateCache cache(options);
  const std::uint64_t sig = make_template(20, 3)->signature;

  // A contended burst: three workers all publish (miss/contended path).
  TemplateLease a = cache.publish(make_template(20, 3));
  TemplateLease b = cache.publish(make_template(20, 3));
  TemplateLease c = cache.publish(make_template(20, 3));
  EXPECT_EQ(cache.replica_count(sig), 3u);

  a.release();
  b.release();
  c.release();  // over the bound: retired, not re-admitted
  EXPECT_EQ(cache.replica_count(sig), 2u);
  EXPECT_EQ(cache.stats().retired, 1u);
  EXPECT_EQ(cache.bytes_retained(), cache.debug_walk_free_bytes());
}

TEST(SharedTemplateCache, InvalidateDropsExactlyTheLeasedReplica) {
  SharedTemplateCache cache;
  const std::uint64_t sig = make_template(20, 4)->signature;
  TemplateLease a = cache.publish(make_template(20, 4));
  TemplateLease b = cache.publish(make_template(20, 4));
  a.release();
  b.release();
  ASSERT_EQ(cache.replica_count(sig), 2u);

  TemplateLease poisoned = cache.checkout(sig);
  ASSERT_TRUE(poisoned);
  poisoned.invalidate();

  // The sibling replica — an independent serialization — survives.
  EXPECT_EQ(cache.replica_count(sig), 1u);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_TRUE(cache.checkout(sig));
  EXPECT_EQ(cache.bytes_retained(), cache.debug_walk_free_bytes());
}

TEST(SharedTemplateCache, ByteBudgetEvictsFreeReplicasAndPinsLeased) {
  const std::size_t one_template = make_template(64, 5)->buffer().total_size();
  SharedTemplateCache::Options options;
  options.max_bytes = one_template + one_template / 2;  // room for ~1.5
  SharedTemplateCache cache(options);

  // Two leased templates of distinct shapes: over budget, but nothing is
  // evictable — the budget pass records a pin and gives up.
  TemplateLease a = cache.publish(make_template(64, 5));
  TemplateLease b = cache.publish(make_template(65, 6));
  EXPECT_GT(cache.bytes_retained(), options.max_bytes);
  EXPECT_GT(cache.stats().pins, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  const std::uint64_t sig_a = a.signature();
  const std::uint64_t sig_b = b.signature();

  // Returning a lease makes a replica evictable; the budget pass then
  // evicts LRU free replicas until under budget.
  a.release();
  b.release();
  EXPECT_LE(cache.bytes_retained(), options.max_bytes);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.replica_count(sig_a) + cache.replica_count(sig_b), 1u);
  EXPECT_EQ(cache.bytes_retained(), cache.debug_walk_free_bytes());
}

TEST(SharedTemplateCache, GrowthDeltaFoldsIntoByteAccounting) {
  SharedTemplateCache cache;
  TemplateLease lease =
      cache.publish(build_template(soap::make_double_array_call({1.0, 2.0}),
                                   TemplateConfig{}));
  const std::size_t before = cache.bytes_retained();
  const std::uint64_t sig = lease.signature();

  // Grow the leased replica in place (field expansion), then return it: the
  // size delta must land in the running total, not require a walk.
  const char big[] = "-2.2250738585072014e-308";
  lease->rewrite_value(0, big, sizeof(big) - 1);
  const std::size_t grown = lease->buffer().total_size();
  EXPECT_GT(grown, before);
  lease.release();

  EXPECT_EQ(cache.bytes_retained(), grown);
  EXPECT_EQ(cache.bytes_retained(), cache.debug_walk_free_bytes());
  TemplateLease again = cache.checkout(sig);
  ASSERT_TRUE(again);
  EXPECT_TRUE(again->check_invariants());
}

TEST(SharedTemplateCache, TwoPipelinesShareTemplatesThroughOneCache) {
  SharedTemplateCache cache;
  SendPipeline::Options options;
  SendPipeline first(options);
  SendPipeline second(options);
  first.set_template_source(&cache);
  second.set_template_source(&cache);

  auto [t1_client, t1_server] = net::make_inmemory_transports();
  auto [t2_client, t2_server] = net::make_inmemory_transports();
  http::HttpConnection sink1(*t1_server);
  http::HttpConnection sink2(*t2_server);

  const RpcCall call =
      soap::make_double_array_call(soap::random_doubles(30, 7));
  SendDestination dest1{t1_client.get(), "/"};
  SendDestination dest2{t2_client.get(), "/"};

  Result<SendReport> warm = first.send(call, dest1);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().match, MatchKind::kFirstTime);
  ASSERT_TRUE(sink1.read_request().ok());

  // The second pipeline never serialized this shape, but the shared cache
  // has: its first send already rides the differential path.
  Result<SendReport> reuse = second.send(call, dest2);
  ASSERT_TRUE(reuse.ok());
  EXPECT_EQ(reuse.value().match, MatchKind::kContentMatch);
  Result<http::HttpRequest> request = sink2.read_request();
  ASSERT_TRUE(request.ok());
  Result<RpcCall> parsed = soap::read_rpc_envelope(request.value().body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().params[0].value == call.params[0].value);

  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SharedTemplateCache, ConcurrentCheckoutCloneInvalidateStress) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kShapes = 4;
  constexpr int kIterations = 400;

  SharedTemplateCache::Options options;
  options.shards = 4;
  options.max_replicas = 3;
  // A budget tight enough that eviction runs concurrently with checkouts.
  options.max_bytes = 6 * make_template(40, 100)->buffer().total_size();
  SharedTemplateCache cache(options);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::size_t shape = (t + static_cast<std::size_t>(i)) % kShapes;
        const RpcCall call = soap::make_double_array_call(
            soap::random_doubles(40 + shape, t * 1000 + static_cast<std::uint64_t>(i)));
        const std::uint64_t sig = call.structure_signature();
        TemplateLease lease = cache.checkout(sig);
        if (!lease) {
          lease = cache.publish(build_template(call, TemplateConfig{}));
        } else {
          // Mutate the leased replica with this thread's values — the data
          // race TSan would catch if leases were not exclusive.
          (void)update_template(*lease.get(), call);
        }
        ASSERT_TRUE(lease);
        if (i % 17 == 0) {
          lease.invalidate();
        } else {
          lease.release();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Quiescent reconciliation: the running total matches a full walk, and no
  // signature exceeded its replica bound.
  EXPECT_EQ(cache.bytes_retained(), cache.debug_walk_free_bytes());
  for (std::size_t shape = 0; shape < kShapes; ++shape) {
    const RpcCall call = soap::make_double_array_call(
        soap::random_doubles(40 + shape, 1));
    EXPECT_LE(cache.replica_count(call.structure_signature()),
              options.max_replicas);
  }
  const SharedTemplateCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.inserts, 0u);
}

}  // namespace
}  // namespace bsoap::core
