// Tests for chunk overlaying: the streamed message must parse to exactly the
// input array, windows must be reused, and multi-window sends must cross the
// window boundary correctly.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "core/overlay.hpp"
#include "http/connection.hpp"
#include "net/inmemory.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/workload.hpp"

namespace bsoap::core {
namespace {

using soap::RpcCall;

struct ReceivedCall {
  http::HttpRequest request;
  RpcCall call;
};

Result<ReceivedCall> receive(net::Transport& transport) {
  http::HttpConnection connection(transport);
  Result<http::HttpRequest> request = connection.read_request();
  if (!request.ok()) return request.error();
  Result<RpcCall> call = soap::read_rpc_envelope(request.value().body);
  if (!call.ok()) return call.error();
  return ReceivedCall{std::move(request.value()), std::move(call.value())};
}

TEST(OverlaySender, SingleWindowDoubleArray) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  OverlaySender sender(*client_t, OverlayConfig{});
  const auto values = soap::random_doubles(100, 21);

  Result<ReceivedCall> received(Error{ErrorCode::kInternal, "unset"});
  std::thread server([&] { received = receive(*server_t); });
  Result<std::size_t> sent =
      sender.send_double_array("sendData", "urn:b", "data", values);
  ASSERT_TRUE(sent.ok());
  server.join();

  ASSERT_TRUE(received.ok()) << received.error().to_string();
  ASSERT_NE(received.value().request.find("Transfer-Encoding"), nullptr);
  const auto& got = received.value().call.params[0].value.doubles();
  ASSERT_EQ(got.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::memcmp(&got[i], &values[i], sizeof(double)), 0) << i;
  }
}

TEST(OverlaySender, MultiWindowCrossesBoundary) {
  OverlayConfig config;
  config.chunk_bytes = 1024;  // tiny windows force many overlays
  auto [client_t, server_t] = net::make_inmemory_transports();
  OverlaySender sender(*client_t, config);
  ASSERT_LT(sender.doubles_per_window(), 100u);

  const auto values = soap::random_doubles(1000, 22);
  Result<ReceivedCall> received(Error{ErrorCode::kInternal, "unset"});
  std::thread server([&] { received = receive(*server_t); });
  ASSERT_TRUE(
      sender.send_double_array("sendData", "urn:b", "data", values).ok());
  server.join();

  ASSERT_TRUE(received.ok()) << received.error().to_string();
  EXPECT_EQ(received.value().call.params[0].value.doubles(), values);
}

TEST(OverlaySender, MioArray) {
  OverlayConfig config;
  config.chunk_bytes = 2048;
  auto [client_t, server_t] = net::make_inmemory_transports();
  OverlaySender sender(*client_t, config);

  const auto values = soap::random_mios(300, 23);
  Result<ReceivedCall> received(Error{ErrorCode::kInternal, "unset"});
  std::thread server([&] { received = receive(*server_t); });
  ASSERT_TRUE(sender.send_mio_array("sendData", "urn:b", "data", values).ok());
  server.join();

  ASSERT_TRUE(received.ok()) << received.error().to_string();
  EXPECT_EQ(received.value().call.params[0].value.mios(), values);
}

TEST(OverlaySender, ExactWindowMultiple) {
  OverlayConfig config;
  config.chunk_bytes = 37 * 16;  // exactly 16 doubles per window
  auto [client_t, server_t] = net::make_inmemory_transports();
  OverlaySender sender(*client_t, config);
  ASSERT_EQ(sender.doubles_per_window(), 16u);

  const auto values = soap::random_doubles(64, 31);  // 4 full windows
  Result<ReceivedCall> received(Error{ErrorCode::kInternal, "unset"});
  std::thread server([&] { received = receive(*server_t); });
  ASSERT_TRUE(
      sender.send_double_array("sendData", "urn:b", "data", values).ok());
  server.join();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().call.params[0].value.doubles(), values);
}

TEST(OverlaySender, SingleElementArray) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  OverlaySender sender(*client_t, OverlayConfig{});
  const std::vector<double> values = {3.141592653589793};
  Result<ReceivedCall> received(Error{ErrorCode::kInternal, "unset"});
  std::thread server([&] { received = receive(*server_t); });
  ASSERT_TRUE(
      sender.send_double_array("sendData", "urn:b", "data", values).ok());
  server.join();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value().call.params[0].value.doubles(), values);
}

TEST(OverlaySender, WindowReusedAcrossSends) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  OverlaySender sender(*client_t, OverlayConfig{});

  for (int round = 0; round < 3; ++round) {
    const auto values = soap::random_doubles(50, 24 + static_cast<std::uint64_t>(round));
    Result<ReceivedCall> received(Error{ErrorCode::kInternal, "unset"});
    std::thread server([&] { received = receive(*server_t); });
    ASSERT_TRUE(
        sender.send_double_array("sendData", "urn:b", "data", values).ok());
    server.join();
    ASSERT_TRUE(received.ok());
    EXPECT_EQ(received.value().call.params[0].value.doubles(), values);
  }
}

TEST(OverlaySender, EnvelopeByteCountMatchesActualBody) {
  auto [client_t, server_t] = net::make_inmemory_transports();
  OverlaySender sender(*client_t, OverlayConfig{});
  const auto values = soap::random_doubles(200, 29);

  Result<ReceivedCall> received(Error{ErrorCode::kInternal, "unset"});
  std::thread server([&] { received = receive(*server_t); });
  Result<std::size_t> sent =
      sender.send_double_array("sendData", "urn:b", "data", values);
  server.join();
  ASSERT_TRUE(sent.ok());
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(sent.value(), received.value().request.body.size());
}

}  // namespace
}  // namespace bsoap::core
