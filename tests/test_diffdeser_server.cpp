// Server-level differential deserialization tests: the fused
// ReplicaStore + ParsedReplica receive path in ServerRuntime. Covers the
// stats surface (content hits / fast parses / full parses / demotions) on
// both connection engines, handler-input equivalence against an
// always-full-parse oracle server, NACK-then-re-pin recovery, demotion on a
// structural patch (crafted with a valid checksum), the
// max_inflate_bytes 413 bound on patch-reconstructed bodies, and two
// shared-replica stress shapes (distinct replicas under 8 workers, and 8
// raw clients hammering ONE template ID to contend the clone-or-lock
// lease; both run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "buffer/sinks.hpp"
#include "common/rng.hpp"
#include "core/client.hpp"
#include "diffwire/wire_format.hpp"
#include "http/http_message.hpp"
#include "net/tcp.hpp"
#include "server/recv_observer.hpp"
#include "server/server_runtime.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"

namespace bsoap::server {
namespace {

using namespace std::chrono_literals;
using core::BsoapClient;
using core::BsoapClientConfig;
using soap::RpcCall;
using soap::Value;

template <typename Pred>
bool wait_for(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

std::string serialize(const RpcCall& call) {
  buffer::StringSink sink;
  soap::write_rpc_envelope(sink, call);
  return sink.take();
}

Result<Value> sum_handler(const RpcCall& call) {
  if (call.method != "sendData") {
    return Error{ErrorCode::kNotFound, "no method"};
  }
  double total = 0;
  for (const double v : call.params[0].value.doubles()) total += v;
  return Value::from_double(total);
}

double sum_of(const std::vector<double>& values) {
  double total = 0;
  for (const double v : values) total += v;
  return total;
}

BsoapClientConfig diff_client_config() {
  BsoapClientConfig cfg;
  cfg.tmpl.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
  cfg.tmpl.stuffing.stuff_on_expand = true;
  cfg.diffwire = true;
  return cfg;
}

net::Dialer tcp_dialer(std::uint16_t port) {
  return [port] { return net::tcp_connect(port); };
}

/// Drives `iters` invokes with one value mutated per step; every result
/// must match the locally computed sum.
void drive_mutating_invokes(BsoapClient& client, int iters,
                            std::uint64_t seed) {
  std::vector<double> values =
      soap::doubles_with_serialized_length(64, 17, seed);
  bsoap::Rng rng(seed ^ 0xabcdef);
  for (int i = 0; i < iters; ++i) {
    values[static_cast<std::size_t>(i) % values.size()] =
        soap::double_with_serialized_length(rng, 17);
    Result<Value> result = client.invoke(soap::make_double_array_call(values));
    ASSERT_TRUE(result.ok()) << "iter " << i << ": "
                             << result.error().to_string();
    EXPECT_EQ(result.value().as_double(), sum_of(values)) << "iter " << i;
  }
}

// --- raw-socket plumbing ---------------------------------------------------

/// Reads one Content-Length-framed HTTP response off the transport.
Result<http::HttpResponse> read_response(net::Transport& transport) {
  std::string buffer;
  char chunk[2048];
  std::size_t head_end = std::string::npos;
  while (head_end == std::string::npos) {
    Result<std::size_t> got = transport.recv(chunk, sizeof(chunk));
    if (!got.ok()) return got.error();
    if (got.value() == 0) {
      return Error{ErrorCode::kClosed, "eof before response head"};
    }
    buffer.append(chunk, got.value());
    head_end = buffer.find("\r\n\r\n");
  }
  Result<http::HttpResponse> head =
      http::parse_response_head(buffer.substr(0, head_end + 4));
  if (!head.ok()) return head.error();
  http::HttpResponse response = std::move(head.value());
  std::size_t body_len = 0;
  if (const http::Header* cl = response.find("Content-Length")) {
    body_len = static_cast<std::size_t>(std::stoull(cl->value));
  }
  response.body = buffer.substr(head_end + 4);
  while (response.body.size() < body_len) {
    Result<std::size_t> got = transport.recv(chunk, sizeof(chunk));
    if (!got.ok()) return got.error();
    if (got.value() == 0) return Error{ErrorCode::kClosed, "eof mid-body"};
    response.body.append(chunk, got.value());
  }
  return response;
}

std::string offer_request(std::uint64_t id, const std::string& body) {
  http::HttpRequest request;
  request.headers.push_back({"Content-Type", "text/xml; charset=utf-8"});
  request.headers.push_back({diffwire::kDiffHeader, diffwire::kOfferValue});
  request.headers.push_back(
      {diffwire::kTemplateHeader, diffwire::format_template_id(id)});
  request.headers.push_back({"Content-Length", std::to_string(body.size())});
  return http::serialize_request_head(request) + body;
}

std::string patch_request(const std::string& frame) {
  http::HttpRequest request;
  request.headers.push_back({"Content-Type", diffwire::kPatchContentType});
  request.headers.push_back({diffwire::kDiffHeader, diffwire::kPatchValue});
  request.headers.push_back({"Content-Length", std::to_string(frame.size())});
  return http::serialize_request_head(request) + frame;
}

struct ByteRun {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};

/// Byte-diffs two same-length bodies into patch runs, merging runs whose
/// unchanged gap is at most `merge_gap` (the shape the client pipeline
/// produces for adjacent field rewrites).
std::vector<ByteRun> byte_diff_runs(const std::string& old_body,
                                    const std::string& fresh,
                                    std::size_t merge_gap) {
  std::vector<ByteRun> runs;
  std::size_t i = 0;
  while (i < old_body.size()) {
    if (old_body[i] == fresh[i]) {
      ++i;
      continue;
    }
    const std::size_t begin = i;
    while (i < old_body.size() && old_body[i] != fresh[i]) ++i;
    if (!runs.empty() &&
        begin - (runs.back().offset + runs.back().length) <= merge_gap) {
      runs.back().length =
          static_cast<std::uint32_t>(i) - runs.back().offset;
    } else {
      runs.push_back(ByteRun{static_cast<std::uint32_t>(begin),
                             static_cast<std::uint32_t>(i - begin)});
    }
  }
  return runs;
}

/// Builds a valid patch frame carrying `runs` of `fresh` (checksum over the
/// whole intended body, as the client pipeline computes it).
std::string make_patch_frame(std::uint64_t id, std::uint32_t epoch,
                             const std::string& fresh,
                             const std::vector<ByteRun>& runs) {
  diffwire::PatchHeader header;
  header.template_id = id;
  header.epoch = epoch;
  header.run_count = static_cast<std::uint32_t>(runs.size());
  header.body_len = static_cast<std::uint32_t>(fresh.size());
  header.checksum = diffwire::fnv1a(fresh);
  std::string frame;
  diffwire::append_patch_header(frame, header);
  for (const ByteRun& run : runs) {
    diffwire::append_run_header(frame, run.offset, run.length);
    frame.append(fresh.data() + run.offset, run.length);
  }
  return frame;
}

// --- fused-path stats on both engines --------------------------------------

void expect_fused_engine_behavior(IoModel io_model, std::size_t workers) {
  RecvStageTimings timings;
  ServerRuntimeOptions options;
  options.workers = workers;
  options.io_model = io_model;
  options.recv_observer = &timings;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  BsoapClient client(tcp_dialer(server.value()->port()),
                     diff_client_config());
  // Invoke 1 pins (full parse); 2..10 are patch frames whose dirty runs
  // re-parse only the touched leaves.
  drive_mutating_invokes(client, 10, 5);
  // An unchanged resend crosses as a header-only replay: the cached call is
  // served with zero parse work (a content hit).
  std::vector<double> fixed =
      soap::doubles_with_serialized_length(32, 17, 6);
  const RpcCall repeat = soap::make_double_array_call(fixed);
  Result<Value> first = client.invoke(repeat);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().as_double(), sum_of(fixed));
  Result<Value> second = client.invoke(repeat);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().as_double(), sum_of(fixed));

  ASSERT_TRUE(wait_for([&] {
    return server.value()->stats().requests >= 12u;
  }));
  const ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.deser_full_parses, 2u);   // the two offers
  EXPECT_EQ(stats.deser_fast_parses, 9u);   // one per mutating patch
  EXPECT_EQ(stats.deser_content_hits, 1u);  // the replay
  EXPECT_EQ(stats.deser_demotions, 0u);
  EXPECT_GE(stats.deser_leaves_reparsed, 9u);
  EXPECT_EQ(stats.patch_nacks, 0u);
  EXPECT_EQ(stats.faults, 0u);

  // Receive-stage timings: every diff request records a parse stage and
  // every patch frame records an apply stage.
  const RecvStageTimings::Snapshot snap = timings.snapshot();
  EXPECT_EQ(snap.parse.count, stats.requests);
  EXPECT_EQ(snap.patch_apply.count, stats.patch_sends);
  server.value()->stop();
}

TEST(DiffDeserServer, BlockingEngineFastParsesAndReplays) {
  expect_fused_engine_behavior(IoModel::kBlocking, 1);
}

TEST(DiffDeserServer, ReactorEngineFastParsesAndReplays) {
  expect_fused_engine_behavior(IoModel::kReactor, 2);
}

// --- handler inputs vs the always-full-parse oracle ------------------------

/// Records the canonical serialization of every call a handler sees.
struct CallRecorder {
  std::mutex mu;
  std::vector<std::string> seen;

  soap::RpcHandler handler() {
    return [this](const RpcCall& call) -> Result<Value> {
      std::lock_guard<std::mutex> lock(mu);
      seen.push_back(serialize(call));
      return Value::from_double(0.0);
    };
  }
};

/// One mutation schedule, replayed identically against several servers:
/// fixed-width rewrites (patch fast parses), NaN / -0.0 / INF lexicals, and
/// a width-changing step that forces a structural fallback re-offer.
void drive_equivalence_stream(BsoapClient& client) {
  std::vector<double> values =
      soap::doubles_with_serialized_length(48, 17, 77);
  bsoap::Rng rng(0x5eed);
  for (int i = 0; i < 8; ++i) {
    values[static_cast<std::size_t>(i * 5)] =
        soap::double_with_serialized_length(rng, 17);
    ASSERT_TRUE(client.invoke(soap::make_double_array_call(values)).ok());
  }
  values[7] = std::numeric_limits<double>::quiet_NaN();
  values[9] = -0.0;
  values[11] = std::numeric_limits<double>::infinity();
  ASSERT_TRUE(client.invoke(soap::make_double_array_call(values)).ok());
  values[13] = 1.5;  // shorter lexical: structural fallback, full re-offer
  ASSERT_TRUE(client.invoke(soap::make_double_array_call(values)).ok());
  for (int i = 0; i < 4; ++i) {
    values[static_cast<std::size_t>(i * 7)] =
        soap::double_with_serialized_length(rng, 17);
    ASSERT_TRUE(client.invoke(soap::make_double_array_call(values)).ok());
  }
}

TEST(DiffDeserServer, HandlerInputsMatchFullParseOracle) {
  // Oracle: the same runtime with differential deserialization disabled —
  // every request takes the ordinary full parse.
  CallRecorder oracle_calls;
  ServerRuntimeOptions oracle_options;
  oracle_options.workers = 1;
  oracle_options.diff_deserialize = false;
  Result<std::unique_ptr<ServerRuntime>> oracle =
      ServerRuntime::start(oracle_calls.handler(), oracle_options);
  ASSERT_TRUE(oracle.ok());

  CallRecorder fused_calls;
  ServerRuntimeOptions fused_options;
  fused_options.workers = 1;
  Result<std::unique_ptr<ServerRuntime>> fused =
      ServerRuntime::start(fused_calls.handler(), fused_options);
  ASSERT_TRUE(fused.ok());

  CallRecorder reactor_calls;
  ServerRuntimeOptions reactor_options;
  reactor_options.workers = 1;
  reactor_options.io_model = IoModel::kReactor;
  Result<std::unique_ptr<ServerRuntime>> reactor =
      ServerRuntime::start(reactor_calls.handler(), reactor_options);
  ASSERT_TRUE(reactor.ok());

  {
    BsoapClient client(tcp_dialer(oracle.value()->port()),
                       diff_client_config());
    drive_equivalence_stream(client);
  }
  {
    BsoapClient client(tcp_dialer(fused.value()->port()),
                       diff_client_config());
    drive_equivalence_stream(client);
  }
  {
    BsoapClient client(tcp_dialer(reactor.value()->port()),
                       diff_client_config());
    drive_equivalence_stream(client);
  }

  // The oracle really full-parsed everything, and the fused server really
  // took the differential paths — yet every handler saw identical calls.
  EXPECT_EQ(oracle.value()->stats().deser_fast_parses, 0u);
  EXPECT_EQ(oracle.value()->stats().deser_content_hits, 0u);
  EXPECT_GT(fused.value()->stats().deser_fast_parses, 0u);
  EXPECT_EQ(fused_calls.seen, oracle_calls.seen);
  EXPECT_EQ(reactor_calls.seen, oracle_calls.seen);

  oracle.value()->stop();
  fused.value()->stop();
  reactor.value()->stop();
}

// --- NACK -> re-pin recovery rebuilds the cached parse ----------------------

TEST(DiffDeserServer, NackThenRepinRecoversCachedParse) {
  ServerRuntimeOptions options;
  options.workers = 1;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  BsoapClient client(tcp_dialer(server.value()->port()),
                     diff_client_config());
  drive_mutating_invokes(client, 5, 21);  // 1 offer + 4 patches

  // Replica loss: the next patch NACKs before any parse work, the client
  // falls back to a full send (re-pin -> fresh cached parse), and the
  // patches after it fast-parse against the rebuilt region map.
  server.value()->replicas()->clear();
  drive_mutating_invokes(client, 3, 22);

  ASSERT_TRUE(wait_for(
      [&] { return server.value()->stats().patch_nacks == 1u; }));
  const ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.deser_full_parses, 2u);  // offer + post-NACK re-pin
  EXPECT_EQ(stats.deser_fast_parses, 6u);  // 4 before the NACK, 2 after
  EXPECT_EQ(stats.deser_demotions, 0u);
  EXPECT_EQ(stats.faults, 0u);
  server.value()->stop();
}

// --- demotion: a checksum-valid patch that rewrites structure ---------------

TEST(DiffDeserServer, StructuralPatchDemotesToFullParse) {
  // Handler that accepts any method, so the demoted parse's result is
  // observable; records what it saw.
  struct Observed {
    std::mutex mu;
    std::vector<std::string> methods;
  } observed;
  soap::RpcHandler handler = [&observed](const RpcCall& call) -> Result<Value> {
    std::lock_guard<std::mutex> lock(observed.mu);
    observed.methods.push_back(call.method);
    return Value::from_double(1.0);
  };

  ServerRuntimeOptions options;
  options.workers = 1;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(handler, options);
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> conn =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(conn.ok());

  const std::uint64_t id = 0xfeedfacecafe0001ull;
  const std::string body = serialize(soap::make_double_array_call(
      soap::doubles_with_serialized_length(8, 17, 7)));
  ASSERT_TRUE(conn.value()->send(offer_request(id, body)).ok());
  Result<http::HttpResponse> ack = read_response(*conn.value());
  ASSERT_TRUE(ack.ok()) << ack.error().to_string();
  EXPECT_EQ(ack.value().status, 200);
  ASSERT_NE(ack.value().find(diffwire::kDiffHeader), nullptr);
  EXPECT_EQ(ack.value().find(diffwire::kDiffHeader)->value,
            diffwire::kAckValue);

  // A patch whose runs rewrite the method name in BOTH tags: the checksum
  // is valid, so the ReplicaStore applies it — but the runs hit structural
  // bytes outside every leaf region, so the cached parse demotes to a full
  // parse of the reconstructed body instead of serving stale values.
  std::string mutated = body;
  for (std::size_t at = mutated.find("sendData"); at != std::string::npos;
       at = mutated.find("sendData", at)) {
    mutated.replace(at, 8, "sendGate");
  }
  ASSERT_EQ(mutated.size(), body.size());
  const std::vector<ByteRun> runs = byte_diff_runs(body, mutated, 8);
  ASSERT_GE(runs.size(), 2u);  // one per rewritten tag
  ASSERT_TRUE(
      conn.value()->send(patch_request(make_patch_frame(id, 1, mutated, runs)))
          .ok());
  Result<http::HttpResponse> patched = read_response(*conn.value());
  ASSERT_TRUE(patched.ok()) << patched.error().to_string();
  EXPECT_EQ(patched.value().status, 200);

  const ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.patch_sends, 1u);
  EXPECT_EQ(stats.patch_nacks, 0u);
  EXPECT_EQ(stats.deser_demotions, 1u);
  EXPECT_EQ(stats.deser_full_parses, 2u);  // the offer + the demoted patch
  EXPECT_EQ(stats.deser_fast_parses, 0u);
  {
    std::lock_guard<std::mutex> lock(observed.mu);
    ASSERT_EQ(observed.methods.size(), 2u);
    EXPECT_EQ(observed.methods[0], "sendData");
    EXPECT_EQ(observed.methods[1], "sendGate");
  }
  server.value()->stop();
}

// --- max_inflate_bytes bounds patch-reconstructed bodies --------------------

TEST(DiffDeserServer, OversizedPatchBodyAnswers413) {
  ServerRuntimeOptions options;
  options.workers = 1;
  options.max_inflate_bytes = 512;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> conn =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(conn.ok());

  // A frame claiming a reconstruction far over the bound must be refused
  // before any replica work — the same 413 a decompression bomb gets.
  diffwire::PatchHeader header;
  header.template_id = 42;
  header.epoch = 1;
  header.run_count = 0;
  header.body_len = 100000;
  std::string frame;
  diffwire::append_patch_header(frame, header);
  ASSERT_TRUE(conn.value()->send(patch_request(frame)).ok());
  Result<http::HttpResponse> response = read_response(*conn.value());
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 413);

  EXPECT_EQ(server.value()->stats().bad_requests, 1u);
  EXPECT_EQ(server.value()->stats().patch_sends, 0u);
  server.value()->stop();
}

// --- stress: 8 clients x 8 workers ------------------------------------------

TEST(DiffDeserServer, EightClientEightWorkerStress) {
  ServerRuntimeOptions options;
  options.workers = 8;
  options.shared_cache = true;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  // Distinct session tokens pin eight separate replicas in the shared
  // store; every worker serves leases concurrently while every result is
  // checked against the locally computed sum.
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 40;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      BsoapClient client(tcp_dialer(server.value()->port()),
                         diff_client_config());
      std::vector<double> values = soap::doubles_with_serialized_length(
          32, 17, 300 + static_cast<std::uint64_t>(t));
      bsoap::Rng rng(400 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kItersPerThread; ++i) {
        values[static_cast<std::size_t>(i) % values.size()] =
            soap::double_with_serialized_length(rng, 17);
        Result<Value> result =
            client.invoke(soap::make_double_array_call(values));
        if (!result.ok() || result.value().as_double() != sum_of(values)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.deser_full_parses, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.deser_fast_parses,
            static_cast<std::uint64_t>(kThreads * (kItersPerThread - 1)));
  EXPECT_EQ(stats.deser_demotions, 0u);
  EXPECT_EQ(stats.patch_nacks, 0u);
  EXPECT_EQ(stats.faults, 0u);
  server.value()->stop();
}

TEST(DiffDeserServer, SharedTemplateIdLeaseContentionStress) {
  // Eight raw clients deliberately share ONE template ID: concurrent
  // offers re-pin the replica out from under in-flight serves, patches
  // race the re-pins (the checksum NACKs any that lose), and leases on the
  // same ParsedReplica contend the clone-or-lock path. Every response must
  // be a clean 200 or 409 — never a fault, never a bad request, never a
  // stale parse (TSan covers the races).
  ServerRuntimeOptions options;
  options.workers = 8;
  Result<std::unique_ptr<ServerRuntime>> server =
      ServerRuntime::start(sum_handler, options);
  ASSERT_TRUE(server.ok());

  constexpr std::uint64_t kSharedId = 0xabad1deaabad1deaull;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 24;
  const std::vector<double> base =
      soap::doubles_with_serialized_length(24, 17, 999);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> oks{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Result<std::unique_ptr<net::Transport>> conn =
          net::tcp_connect(server.value()->port());
      if (!conn.ok()) {
        failures.fetch_add(1);
        return;
      }
      bsoap::Rng rng(500 + static_cast<std::uint64_t>(t));
      std::vector<double> values = base;
      std::string known = serialize(soap::make_double_array_call(values));
      std::uint32_t epoch = 0;
      const auto roundtrip = [&](const std::string& wire) -> int {
        if (!conn.value()->send(wire).ok()) return -1;
        Result<http::HttpResponse> response = read_response(*conn.value());
        if (!response.ok()) return -1;
        return response.value().status;
      };
      if (roundtrip(offer_request(kSharedId, known)) != 200) {
        failures.fetch_add(1);
        return;
      }
      oks.fetch_add(1);
      for (int i = 0; i < kItersPerThread; ++i) {
        values[static_cast<std::size_t>(rng.next_below(values.size()))] =
            soap::double_with_serialized_length(rng, 17);
        const std::string fresh =
            serialize(soap::make_double_array_call(values));
        const std::string frame = make_patch_frame(
            kSharedId, epoch + 1, fresh, byte_diff_runs(known, fresh, 18));
        const int status = roundtrip(patch_request(frame));
        if (status == 200) {
          oks.fetch_add(1);
          known = fresh;
          ++epoch;
        } else if (status == diffwire::kNackStatus) {
          // Another thread re-pinned or advanced the replica: fall back to
          // a full offer exactly as the client pipeline would.
          if (roundtrip(offer_request(kSharedId, fresh)) != 200) {
            failures.fetch_add(1);
            return;
          }
          oks.fetch_add(1);
          known = fresh;
          epoch = 0;
        } else {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  const ServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.faults, 0u);
  EXPECT_EQ(stats.bad_requests, 0u);
  EXPECT_EQ(stats.requests, oks.load());
  // Every 200 was served through exactly one deserialization path.
  EXPECT_EQ(stats.deser_content_hits + stats.deser_fast_parses +
                stats.deser_full_parses,
            stats.requests);
  server.value()->stop();
}

}  // namespace
}  // namespace bsoap::server
