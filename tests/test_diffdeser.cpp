// Tests for differential deserialization (Section 6 extension): content
// hits, fast region re-parses, graceful fallback to full parsing, and the
// run-guided apply_runs path the server's ParsedReplica drives.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <span>

#include "buffer/sinks.hpp"
#include "core/client.hpp"
#include "core/diff_deserializer.hpp"
#include "core/diff_server.hpp"
#include "net/tcp.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/soap_server.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"

namespace bsoap::core {
namespace {

using soap::RpcCall;

std::string serialize(const RpcCall& call) {
  buffer::StringSink sink;
  soap::write_rpc_envelope(sink, call);
  return sink.take();
}

/// Byte-diffs two same-length documents into dirty runs, merging runs whose
/// gap of unchanged (structural) bytes is at most `merge_gap` — the shape
/// SendPipeline::build_patch_frame produces when adjacent fields change.
std::vector<DiffDeserializer::DirtyRun> byte_diff_runs(std::string_view old_doc,
                                                       std::string_view fresh,
                                                       std::size_t merge_gap) {
  std::vector<DiffDeserializer::DirtyRun> runs;
  std::size_t i = 0;
  while (i < old_doc.size()) {
    if (old_doc[i] == fresh[i]) {
      ++i;
      continue;
    }
    const std::size_t begin = i;
    while (i < old_doc.size() && old_doc[i] != fresh[i]) ++i;
    if (!runs.empty() &&
        begin - (runs.back().offset + runs.back().length) <= merge_gap) {
      runs.back().length = i - runs.back().offset;
    } else {
      runs.push_back(DiffDeserializer::DirtyRun{begin, i - begin});
    }
  }
  return runs;
}

/// Value-identity against the always-full-parse oracle, via the canonical
/// serialization (covers method, namespace, every leaf — and distinguishes
/// -0.0 from 0.0 while treating two NaNs as equal).
void expect_matches_oracle(const DiffDeserializer& deser,
                           std::string_view document) {
  Result<RpcCall> oracle = soap::read_rpc_envelope(document);
  ASSERT_TRUE(oracle.ok()) << oracle.error().to_string();
  EXPECT_EQ(serialize(deser.call()), serialize(oracle.value()));
}

TEST(DiffDeserializer, ContentHitOnIdenticalDocument) {
  DiffDeserializer deser;
  const std::string doc =
      serialize(soap::make_double_array_call(soap::random_doubles(50, 1)));
  ASSERT_TRUE(deser.parse(doc).ok());
  EXPECT_EQ(deser.stats().full_parses, 1u);

  Result<const RpcCall*> again = deser.parse(doc);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(deser.stats().content_hits, 1u);
  EXPECT_EQ(deser.stats().full_parses, 1u);
  EXPECT_EQ(again.value()->params[0].value.doubles().size(), 50u);
}

TEST(DiffDeserializer, FastParseWhenRegionLengthsUnchanged) {
  DiffDeserializer deser;
  auto values = soap::doubles_with_serialized_length(60, 18, 2);
  ASSERT_TRUE(deser.parse(serialize(soap::make_double_array_call(values))).ok());

  // Change several values to others of the SAME serialized length: skeleton
  // bytes line up, so only the changed regions are re-parsed.
  auto replacement = soap::doubles_with_serialized_length(5, 18, 3);
  for (int i = 0; i < 5; ++i) values[static_cast<std::size_t>(i * 11)] = replacement[static_cast<std::size_t>(i)];
  Result<const RpcCall*> parsed =
      deser.parse(serialize(soap::make_double_array_call(values)));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(deser.stats().fast_parses, 1u);
  EXPECT_EQ(deser.stats().full_parses, 1u);
  EXPECT_EQ(deser.stats().regions_reparsed, 5u);
  EXPECT_EQ(parsed.value()->params[0].value.doubles(), values);
}

TEST(DiffDeserializer, FallbackWhenLengthChanges) {
  DiffDeserializer deser;
  auto values = soap::doubles_with_serialized_length(30, 18, 4);
  ASSERT_TRUE(deser.parse(serialize(soap::make_double_array_call(values))).ok());

  values[3] = 1.0;  // 1 char: document shrinks
  Result<const RpcCall*> parsed =
      deser.parse(serialize(soap::make_double_array_call(values)));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(deser.stats().full_parses, 2u);
  EXPECT_EQ(deser.stats().fast_parses, 0u);
  EXPECT_EQ(parsed.value()->params[0].value.doubles(), values);
}

TEST(DiffDeserializer, FallbackWhenStructureChanges) {
  DiffDeserializer deser;
  ASSERT_TRUE(deser
                  .parse(serialize(soap::make_double_array_call(
                      soap::doubles_with_serialized_length(10, 18, 5))))
                  .ok());
  // Same byte length achieved with a different method name would still be a
  // skeleton mismatch; simpler: different array size.
  Result<const RpcCall*> parsed = deser.parse(serialize(
      soap::make_double_array_call(soap::doubles_with_serialized_length(11, 18, 6))));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(deser.stats().full_parses, 2u);
}

TEST(DiffDeserializer, MioRegions) {
  DiffDeserializer deser;
  auto mios = soap::mios_with_serialized_length(40, 36, 7);
  ASSERT_TRUE(deser.parse(serialize(soap::make_mio_array_call(mios))).ok());

  // Replace one MIO's double with another of the same width.
  const auto replacement = soap::mios_with_serialized_length(1, 36, 8)[0];
  mios[9].value = replacement.value;
  Result<const RpcCall*> parsed =
      deser.parse(serialize(soap::make_mio_array_call(mios)));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(deser.stats().fast_parses, 1u);
  EXPECT_EQ(parsed.value()->params[0].value.mios(), mios);
}

TEST(DiffDeserializer, MalformedDocumentFails) {
  DiffDeserializer deser;
  EXPECT_FALSE(deser.parse("<not-soap/>").ok());
}

TEST(DiffDeserializer, ResetForgetsCache) {
  DiffDeserializer deser;
  const std::string doc =
      serialize(soap::make_double_array_call(soap::random_doubles(10, 9)));
  ASSERT_TRUE(deser.parse(doc).ok());
  deser.reset();
  ASSERT_TRUE(deser.parse(doc).ok());
  EXPECT_EQ(deser.stats().full_parses, 2u);
  EXPECT_EQ(deser.stats().content_hits, 0u);
}

TEST(DiffDeserializer, ScalarParamsDisableFastPathSafely) {
  DiffDeserializer deser;
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  call.params.push_back(soap::Param{"x", soap::Value::from_int(12345)});
  ASSERT_TRUE(deser.parse(serialize(call)).ok());
  call.params[0].value = soap::Value::from_int(54321);  // same width
  Result<const RpcCall*> parsed = deser.parse(serialize(call));
  ASSERT_TRUE(parsed.ok());
  // Scalar leaves are not slot-addressable: full parse, but still correct.
  EXPECT_EQ(deser.stats().full_parses, 2u);
  EXPECT_EQ(parsed.value()->params[0].value.as_int(), 54321);
}

TEST(DiffDeserializerApplyRuns, EmptyRunsAreAContentHit) {
  DiffDeserializer deser;
  const std::string doc = serialize(
      soap::make_double_array_call(soap::doubles_with_serialized_length(20, 18, 40)));
  ASSERT_TRUE(deser.prime(doc).ok());
  Result<DiffDeserializer::ApplyReport> report = deser.apply_runs(doc, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().path, DiffDeserializer::ApplyPath::kContentHit);
  EXPECT_EQ(deser.stats().content_hits, 1u);
  EXPECT_EQ(deser.stats().full_parses, 1u);
  expect_matches_oracle(deser, doc);
}

TEST(DiffDeserializerApplyRuns, SingleLeafRunReparsesOneRegion) {
  DiffDeserializer deser;
  auto values = soap::doubles_with_serialized_length(30, 18, 41);
  const std::string doc = serialize(soap::make_double_array_call(values));
  ASSERT_TRUE(deser.prime(doc).ok());
  ASSERT_TRUE(deser.fast_path_usable());

  values[7] = soap::doubles_with_serialized_length(1, 18, 42)[0];
  const std::string fresh = serialize(soap::make_double_array_call(values));
  ASSERT_EQ(fresh.size(), doc.size());
  const auto runs = byte_diff_runs(doc, fresh, 0);
  ASSERT_FALSE(runs.empty());

  Result<DiffDeserializer::ApplyReport> report = deser.apply_runs(fresh, runs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().path, DiffDeserializer::ApplyPath::kFastParse);
  EXPECT_EQ(report.value().leaves_reparsed, 1u);
  EXPECT_FALSE(report.value().demoted);
  expect_matches_oracle(deser, fresh);
}

TEST(DiffDeserializerApplyRuns, RunCoveringCloseTagFastParses) {
  // build_patch_frame runs are field_width + close_tag_len wide: the run
  // covers the leaf AND the (unchanged) structural close-tag bytes after
  // it. That must still be a fast parse, not a demotion.
  DiffDeserializer deser;
  auto values = soap::doubles_with_serialized_length(25, 18, 43);
  const std::string doc = serialize(soap::make_double_array_call(values));
  ASSERT_TRUE(deser.prime(doc).ok());

  values[12] = soap::doubles_with_serialized_length(1, 18, 44)[0];
  const std::string fresh = serialize(soap::make_double_array_call(values));
  // Gap 18 coalesces the intra-leaf diffs into one run (unchanged digits
  // inside the lexical would otherwise split it).
  auto runs = byte_diff_runs(doc, fresh, 18);
  ASSERT_EQ(runs.size(), 1u);
  // Widen the run over the close tag and into the next open tag.
  runs[0].length = std::min(runs[0].length + 12, fresh.size() - runs[0].offset);

  Result<DiffDeserializer::ApplyReport> report = deser.apply_runs(fresh, runs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().path, DiffDeserializer::ApplyPath::kFastParse);
  EXPECT_EQ(deser.stats().demotions, 0u);
  expect_matches_oracle(deser, fresh);
}

TEST(DiffDeserializerApplyRuns, RegionStraddlingRunReparsesBothLeaves) {
  DiffDeserializer deser;
  auto values = soap::doubles_with_serialized_length(16, 18, 45);
  const std::string doc = serialize(soap::make_double_array_call(values));
  ASSERT_TRUE(deser.prime(doc).ok());

  // Two adjacent leaves change; one merged run straddles the structural
  // bytes between their regions.
  auto repl = soap::doubles_with_serialized_length(2, 18, 46);
  values[5] = repl[0];
  values[6] = repl[1];
  const std::string fresh = serialize(soap::make_double_array_call(values));
  const auto runs = byte_diff_runs(doc, fresh, fresh.size());  // force merge
  ASSERT_EQ(runs.size(), 1u);

  Result<DiffDeserializer::ApplyReport> report = deser.apply_runs(fresh, runs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().path, DiffDeserializer::ApplyPath::kFastParse);
  EXPECT_EQ(report.value().leaves_reparsed, 2u);
  expect_matches_oracle(deser, fresh);
}

TEST(DiffDeserializerApplyRuns, NanAndNegativeZeroLexicals) {
  DiffDeserializer deser;
  auto values = soap::doubles_with_serialized_length(10, 18, 47);
  const std::string doc = serialize(soap::make_double_array_call(values));
  ASSERT_TRUE(deser.prime(doc).ok());
  ASSERT_GE(deser.regions().size(), 4u);

  // Overwrite two leaf regions in place with padded special lexicals: the
  // xsd:double forms both the fast path and the oracle must agree on.
  std::string fresh = doc;
  const auto patch_region = [&](std::size_t index, std::string_view lexical) {
    const DiffDeserializer::LeafRegion r = deser.regions()[index];
    const std::size_t width = r.end - r.begin;
    ASSERT_GE(width, lexical.size());
    std::string padded(lexical);
    padded.resize(width, ' ');
    fresh.replace(r.begin, width, padded);
  };
  patch_region(1, "NaN");
  patch_region(3, "-0.0");
  const auto runs = byte_diff_runs(doc, fresh, 0);

  Result<DiffDeserializer::ApplyReport> report = deser.apply_runs(fresh, runs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().path, DiffDeserializer::ApplyPath::kFastParse);
  const std::vector<double>& doubles = deser.call().params[0].value.doubles();
  EXPECT_TRUE(std::isnan(doubles[1]));
  EXPECT_TRUE(std::signbit(doubles[3]));
  EXPECT_EQ(doubles[3], 0.0);
  expect_matches_oracle(deser, fresh);
}

TEST(DiffDeserializerApplyRuns, StructuralByteChangeDemotes) {
  DiffDeserializer deser;
  auto values = soap::doubles_with_serialized_length(12, 18, 48);
  const std::string doc = serialize(soap::make_double_array_call(values));
  ASSERT_TRUE(deser.prime(doc).ok());

  // Flip a byte inside the method element name (structural), with a run
  // that covers it: the fast path must notice and rebuild via full parse.
  const std::size_t method_pos = doc.find("sendData");
  ASSERT_NE(method_pos, std::string::npos);
  std::string fresh = doc;
  // Replace both occurrences (open + close tag) so the result stays
  // well-formed XML and the full parse succeeds.
  std::size_t pos = 0;
  while ((pos = fresh.find("sendData", pos)) != std::string::npos) {
    fresh.replace(pos, 8, "sendDatb");
    pos += 8;
  }
  const auto runs = byte_diff_runs(doc, fresh, 0);

  Result<DiffDeserializer::ApplyReport> report = deser.apply_runs(fresh, runs);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().path, DiffDeserializer::ApplyPath::kFullParse);
  EXPECT_TRUE(report.value().demoted);
  EXPECT_EQ(deser.stats().demotions, 1u);
  EXPECT_EQ(deser.call().method, "sendDatb");
  expect_matches_oracle(deser, fresh);
}

TEST(DiffDeserializerApplyRuns, SizeChangeDemotes) {
  DiffDeserializer deser;
  auto values = soap::doubles_with_serialized_length(12, 18, 49);
  ASSERT_TRUE(deser.prime(serialize(soap::make_double_array_call(values))).ok());
  values[0] = 1.0;  // shorter lexical: the document shrinks
  const std::string fresh = serialize(soap::make_double_array_call(values));
  Result<DiffDeserializer::ApplyReport> report = deser.apply_runs(fresh, {});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().path, DiffDeserializer::ApplyPath::kFullParse);
  EXPECT_TRUE(report.value().demoted);
  expect_matches_oracle(deser, fresh);
}

TEST(DiffDeserializerApplyRuns, ReparseFailureDemotesAndInvalidatesCache) {
  DiffDeserializer deser;
  auto values = soap::doubles_with_serialized_length(8, 18, 50);
  const std::string doc = serialize(soap::make_double_array_call(values));
  ASSERT_TRUE(deser.prime(doc).ok());

  // Garbage inside a leaf region: the typed reparse fails, the demotion's
  // full parse fails on the same bytes, and the cache must not survive in
  // the half-updated state.
  const DiffDeserializer::LeafRegion r = deser.regions()[2];
  std::string fresh = doc;
  fresh.replace(r.begin, r.end - r.begin, std::string(r.end - r.begin, '#'));
  const auto runs = byte_diff_runs(doc, fresh, 0);

  Result<DiffDeserializer::ApplyReport> report = deser.apply_runs(fresh, runs);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(deser.stats().demotions, 1u);
  EXPECT_FALSE(deser.primed());

  // Recovery: a later full body re-primes cleanly.
  ASSERT_TRUE(deser.prime(doc).ok());
  expect_matches_oracle(deser, doc);
}

TEST(DiffDeserializerApplyRuns, UnprimedFallsBackToFullParse) {
  DiffDeserializer deser;
  const std::string doc = serialize(
      soap::make_double_array_call(soap::doubles_with_serialized_length(6, 18, 51)));
  const DiffDeserializer::DirtyRun run{0, 1};
  Result<DiffDeserializer::ApplyReport> report = deser.apply_runs(
      doc, std::span<const DiffDeserializer::DirtyRun>(&run, 1));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().path, DiffDeserializer::ApplyPath::kFullParse);
  EXPECT_FALSE(report.value().demoted);
  expect_matches_oracle(deser, doc);
}

TEST(DiffDeserializerApplyRuns, RandomizedDirtyRunSweepsMatchOracle) {
  std::mt19937_64 rng(2026);
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 40 + static_cast<std::size_t>(trial) * 23;
    auto values = soap::doubles_with_serialized_length(
        n, 18, 500 + static_cast<unsigned>(trial));
    DiffDeserializer deser;
    std::string doc = serialize(soap::make_double_array_call(values));
    ASSERT_TRUE(deser.prime(doc).ok());
    ASSERT_TRUE(deser.fast_path_usable());

    for (int epoch = 1; epoch <= 10; ++epoch) {
      const std::size_t dirty =
          1 + rng() % std::max<std::size_t>(1, n / 3);  // width sweep
      auto repl = soap::doubles_with_serialized_length(
          dirty, 18, 1000 + static_cast<unsigned>(trial * 100 + epoch));
      for (std::size_t k = 0; k < dirty; ++k) values[rng() % n] = repl[k];
      std::string fresh = serialize(soap::make_double_array_call(values));
      ASSERT_EQ(fresh.size(), doc.size());
      // Random merge gaps: single-leaf runs, multi-run merges, and runs
      // straddling regions across structural bytes all occur.
      const auto runs = byte_diff_runs(doc, fresh, rng() % 96);

      Result<DiffDeserializer::ApplyReport> report =
          deser.apply_runs(fresh, runs);
      ASSERT_TRUE(report.ok());
      EXPECT_FALSE(report.value().demoted);
      expect_matches_oracle(deser, fresh);
      doc = std::move(fresh);
    }
    EXPECT_EQ(deser.stats().demotions, 0u);
    EXPECT_EQ(deser.stats().full_parses, 1u);
  }
}

TEST(DiffDeserializer, TakeStatsDrainsCounters) {
  DiffDeserializer deser;
  const std::string doc = serialize(
      soap::make_double_array_call(soap::doubles_with_serialized_length(5, 18, 52)));
  ASSERT_TRUE(deser.parse(doc).ok());
  ASSERT_TRUE(deser.parse(doc).ok());  // content hit

  const DiffDeserializer::Stats drained = deser.take_stats();
  EXPECT_EQ(drained.full_parses, 1u);
  EXPECT_EQ(drained.content_hits, 1u);
  EXPECT_EQ(deser.stats().full_parses, 0u);
  EXPECT_EQ(deser.stats().content_hits, 0u);

  ASSERT_TRUE(deser.parse(doc).ok());
  EXPECT_EQ(deser.take_stats().content_hits, 1u);  // only the new delta
}

TEST(DiffServerIntegration, ContentHitsAcrossRequests) {
  auto collector = std::make_shared<DiffDeserCollector>();
  auto server = soap::SoapHttpServer::start(
      [](const RpcCall& call) -> Result<soap::Value> {
        return soap::Value::from_int(
            static_cast<std::int32_t>(call.params[0].value.doubles().size()));
      },
      make_diff_deserializing_options(collector));
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(transport.ok());
  BsoapClient client(*transport.value());

  // Identical calls: first a full parse, then server-side content hits
  // (the client resends stored bytes, the server memcmps its cache).
  const RpcCall call = soap::make_double_array_call(
      soap::doubles_with_serialized_length(30, 18, 10));
  for (int i = 0; i < 4; ++i) {
    Result<soap::Value> result = client.invoke(call);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().as_int(), 30);
  }
  EXPECT_EQ(collector->full_parses(), 1u);
  EXPECT_EQ(collector->content_hits(), 3u);

  // Same-width value change: client rewrites one field in place, server
  // re-parses only the changed region.
  RpcCall changed = call;
  changed.params[0].value.doubles()[4] =
      soap::doubles_with_serialized_length(1, 18, 11)[0];
  Result<soap::Value> result = client.invoke(changed);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(collector->fast_parses(), 1u);

  server.value()->stop();
}

}  // namespace
}  // namespace bsoap::core
