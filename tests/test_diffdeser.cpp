// Tests for differential deserialization (Section 6 extension): content
// hits, fast region re-parses, and graceful fallback to full parsing.
#include <gtest/gtest.h>

#include <cstring>

#include "buffer/sinks.hpp"
#include "core/client.hpp"
#include "core/diff_deserializer.hpp"
#include "core/diff_server.hpp"
#include "net/tcp.hpp"
#include "soap/soap_server.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"

namespace bsoap::core {
namespace {

using soap::RpcCall;

std::string serialize(const RpcCall& call) {
  buffer::StringSink sink;
  soap::write_rpc_envelope(sink, call);
  return sink.take();
}

TEST(DiffDeserializer, ContentHitOnIdenticalDocument) {
  DiffDeserializer deser;
  const std::string doc =
      serialize(soap::make_double_array_call(soap::random_doubles(50, 1)));
  ASSERT_TRUE(deser.parse(doc).ok());
  EXPECT_EQ(deser.stats().full_parses, 1u);

  Result<const RpcCall*> again = deser.parse(doc);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(deser.stats().content_hits, 1u);
  EXPECT_EQ(deser.stats().full_parses, 1u);
  EXPECT_EQ(again.value()->params[0].value.doubles().size(), 50u);
}

TEST(DiffDeserializer, FastParseWhenRegionLengthsUnchanged) {
  DiffDeserializer deser;
  auto values = soap::doubles_with_serialized_length(60, 18, 2);
  ASSERT_TRUE(deser.parse(serialize(soap::make_double_array_call(values))).ok());

  // Change several values to others of the SAME serialized length: skeleton
  // bytes line up, so only the changed regions are re-parsed.
  auto replacement = soap::doubles_with_serialized_length(5, 18, 3);
  for (int i = 0; i < 5; ++i) values[static_cast<std::size_t>(i * 11)] = replacement[static_cast<std::size_t>(i)];
  Result<const RpcCall*> parsed =
      deser.parse(serialize(soap::make_double_array_call(values)));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(deser.stats().fast_parses, 1u);
  EXPECT_EQ(deser.stats().full_parses, 1u);
  EXPECT_EQ(deser.stats().regions_reparsed, 5u);
  EXPECT_EQ(parsed.value()->params[0].value.doubles(), values);
}

TEST(DiffDeserializer, FallbackWhenLengthChanges) {
  DiffDeserializer deser;
  auto values = soap::doubles_with_serialized_length(30, 18, 4);
  ASSERT_TRUE(deser.parse(serialize(soap::make_double_array_call(values))).ok());

  values[3] = 1.0;  // 1 char: document shrinks
  Result<const RpcCall*> parsed =
      deser.parse(serialize(soap::make_double_array_call(values)));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(deser.stats().full_parses, 2u);
  EXPECT_EQ(deser.stats().fast_parses, 0u);
  EXPECT_EQ(parsed.value()->params[0].value.doubles(), values);
}

TEST(DiffDeserializer, FallbackWhenStructureChanges) {
  DiffDeserializer deser;
  ASSERT_TRUE(deser
                  .parse(serialize(soap::make_double_array_call(
                      soap::doubles_with_serialized_length(10, 18, 5))))
                  .ok());
  // Same byte length achieved with a different method name would still be a
  // skeleton mismatch; simpler: different array size.
  Result<const RpcCall*> parsed = deser.parse(serialize(
      soap::make_double_array_call(soap::doubles_with_serialized_length(11, 18, 6))));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(deser.stats().full_parses, 2u);
}

TEST(DiffDeserializer, MioRegions) {
  DiffDeserializer deser;
  auto mios = soap::mios_with_serialized_length(40, 36, 7);
  ASSERT_TRUE(deser.parse(serialize(soap::make_mio_array_call(mios))).ok());

  // Replace one MIO's double with another of the same width.
  const auto replacement = soap::mios_with_serialized_length(1, 36, 8)[0];
  mios[9].value = replacement.value;
  Result<const RpcCall*> parsed =
      deser.parse(serialize(soap::make_mio_array_call(mios)));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(deser.stats().fast_parses, 1u);
  EXPECT_EQ(parsed.value()->params[0].value.mios(), mios);
}

TEST(DiffDeserializer, MalformedDocumentFails) {
  DiffDeserializer deser;
  EXPECT_FALSE(deser.parse("<not-soap/>").ok());
}

TEST(DiffDeserializer, ResetForgetsCache) {
  DiffDeserializer deser;
  const std::string doc =
      serialize(soap::make_double_array_call(soap::random_doubles(10, 9)));
  ASSERT_TRUE(deser.parse(doc).ok());
  deser.reset();
  ASSERT_TRUE(deser.parse(doc).ok());
  EXPECT_EQ(deser.stats().full_parses, 2u);
  EXPECT_EQ(deser.stats().content_hits, 0u);
}

TEST(DiffDeserializer, ScalarParamsDisableFastPathSafely) {
  DiffDeserializer deser;
  RpcCall call;
  call.method = "m";
  call.service_namespace = "urn:s";
  call.params.push_back(soap::Param{"x", soap::Value::from_int(12345)});
  ASSERT_TRUE(deser.parse(serialize(call)).ok());
  call.params[0].value = soap::Value::from_int(54321);  // same width
  Result<const RpcCall*> parsed = deser.parse(serialize(call));
  ASSERT_TRUE(parsed.ok());
  // Scalar leaves are not slot-addressable: full parse, but still correct.
  EXPECT_EQ(deser.stats().full_parses, 2u);
  EXPECT_EQ(parsed.value()->params[0].value.as_int(), 54321);
}

TEST(DiffServerIntegration, ContentHitsAcrossRequests) {
  auto collector = std::make_shared<DiffDeserCollector>();
  auto server = soap::SoapHttpServer::start(
      [](const RpcCall& call) -> Result<soap::Value> {
        return soap::Value::from_int(
            static_cast<std::int32_t>(call.params[0].value.doubles().size()));
      },
      make_diff_deserializing_options(collector));
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<net::Transport>> transport =
      net::tcp_connect(server.value()->port());
  ASSERT_TRUE(transport.ok());
  BsoapClient client(*transport.value());

  // Identical calls: first a full parse, then server-side content hits
  // (the client resends stored bytes, the server memcmps its cache).
  const RpcCall call = soap::make_double_array_call(
      soap::doubles_with_serialized_length(30, 18, 10));
  for (int i = 0; i < 4; ++i) {
    Result<soap::Value> result = client.invoke(call);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().as_int(), 30);
  }
  EXPECT_EQ(collector->full_parses(), 1u);
  EXPECT_EQ(collector->content_hits(), 3u);

  // Same-width value change: client rewrites one field in place, server
  // re-parses only the changed region.
  RpcCall changed = call;
  changed.params[0].value.doubles()[4] =
      soap::doubles_with_serialized_length(1, 18, 11)[0];
  Result<soap::Value> result = client.invoke(changed);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(collector->fast_parses(), 1u);

  server.value()->stop();
}

}  // namespace
}  // namespace bsoap::core
