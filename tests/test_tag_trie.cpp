// Tests for the trie-based tag matcher (schema-specific parsing substrate).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "xml/tag_trie.hpp"

namespace bsoap::xml {
namespace {

TEST(TagTrie, BasicInsertAndMatch) {
  TagTrie trie;
  EXPECT_EQ(trie.add("item"), 0);
  EXPECT_EQ(trie.add("x"), 1);
  EXPECT_EQ(trie.add("y"), 2);
  EXPECT_EQ(trie.add("v"), 3);
  EXPECT_EQ(trie.size(), 4);

  EXPECT_EQ(trie.match("item"), 0);
  EXPECT_EQ(trie.match("x"), 1);
  EXPECT_EQ(trie.match("v"), 3);
  EXPECT_EQ(trie.match("z"), TagTrie::kNoMatch);
  EXPECT_EQ(trie.match("ite"), TagTrie::kNoMatch);   // proper prefix
  EXPECT_EQ(trie.match("items"), TagTrie::kNoMatch); // proper extension
  EXPECT_EQ(trie.match(""), TagTrie::kNoMatch);
}

TEST(TagTrie, DuplicateInsertKeepsId) {
  TagTrie trie;
  EXPECT_EQ(trie.add("SOAP-ENV:Body"), 0);
  EXPECT_EQ(trie.add("SOAP-ENV:Body"), 0);
  EXPECT_EQ(trie.size(), 1);
}

TEST(TagTrie, PrefixTagsCoexist) {
  TagTrie trie;
  const int a = trie.add("data");
  const int b = trie.add("dataset");
  const int c = trie.add("dat");
  EXPECT_EQ(trie.match("data"), a);
  EXPECT_EQ(trie.match("dataset"), b);
  EXPECT_EQ(trie.match("dat"), c);
}

TEST(TagTrie, RandomizedAgainstLinearScan) {
  Rng rng(404);
  for (int round = 0; round < 20; ++round) {
    TagTrie trie;
    std::vector<std::string> tags;
    const std::size_t n = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < n; ++i) {
      std::string tag;
      const std::size_t len = 1 + rng.next_below(12);
      for (std::size_t k = 0; k < len; ++k) {
        tag += static_cast<char>('a' + rng.next_below(6));  // force collisions
      }
      tags.push_back(tag);
    }
    std::vector<int> ids(tags.size());
    for (std::size_t i = 0; i < tags.size(); ++i) ids[i] = trie.add(tags[i]);

    // Probe with a mix of present and absent names.
    for (int probe = 0; probe < 200; ++probe) {
      std::string name;
      if (rng.chance(1, 2)) {
        name = tags[rng.next_below(tags.size())];
      } else {
        const std::size_t len = 1 + rng.next_below(12);
        for (std::size_t k = 0; k < len; ++k) {
          name += static_cast<char>('a' + rng.next_below(6));
        }
      }
      // Linear-scan oracle: FIRST insertion wins (duplicates map to the
      // original id, matching TagTrie::add semantics).
      int expected = TagTrie::kNoMatch;
      for (std::size_t i = 0; i < tags.size(); ++i) {
        if (tags[i] == name) {
          expected = ids[i];
          break;
        }
      }
      EXPECT_EQ(trie.match(name), expected) << name;
    }
  }
}

TEST(TagTrie, FullByteRange) {
  TagTrie trie;
  std::string odd = "t";
  odd += static_cast<char>(0xC3);  // UTF-8 lead byte
  odd += static_cast<char>(0xA9);
  const int id = trie.add(odd);
  EXPECT_EQ(trie.match(odd), id);
}

}  // namespace
}  // namespace bsoap::xml
