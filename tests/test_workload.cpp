// Tests for the workload generators: exact serialized widths are what the
// figure benchmarks depend on.
#include <gtest/gtest.h>

#include "soap/workload.hpp"
#include "textconv/dtoa.hpp"
#include "textconv/itoa.hpp"

namespace bsoap::soap {
namespace {

class DoubleWidth : public ::testing::TestWithParam<int> {};

TEST_P(DoubleWidth, ExactSerializedLength) {
  const int chars = GetParam();
  const auto values = doubles_with_serialized_length(200, chars, 555);
  for (const double v : values) {
    EXPECT_EQ(textconv::serialized_length_double(v), chars) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, DoubleWidth,
                         ::testing::Values(1, 2, 5, 8, 12, 16, 17, 18, 20, 22,
                                           23, 24));

class IntWidth : public ::testing::TestWithParam<int> {};

TEST_P(IntWidth, ExactSerializedLength) {
  const int chars = GetParam();
  const auto values = ints_with_serialized_length(200, chars, 556);
  for (const std::int32_t v : values) {
    EXPECT_EQ(textconv::serialized_length_i32(v), chars) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, IntWidth,
                         ::testing::Values(1, 2, 5, 9, 10, 11));

class MioWidth : public ::testing::TestWithParam<int> {};

TEST_P(MioWidth, ExactTotalSerializedLength) {
  const int chars = GetParam();
  const auto values = mios_with_serialized_length(100, chars, 557);
  for (const Mio& m : values) {
    const int total = textconv::serialized_length_i32(m.x) +
                      textconv::serialized_length_i32(m.y) +
                      textconv::serialized_length_double(m.value);
    EXPECT_EQ(total, chars);
  }
}

// 3, 36 and 46 are the paper's minimum, intermediate and maximum MIOs.
INSTANTIATE_TEST_SUITE_P(PaperWidths, MioWidth,
                         ::testing::Values(3, 10, 26, 36, 46));

TEST(Workload, Deterministic) {
  EXPECT_EQ(random_doubles(50, 1), random_doubles(50, 1));
  EXPECT_NE(random_doubles(50, 1), random_doubles(50, 2));
  EXPECT_EQ(random_mios(20, 3), random_mios(20, 3));
}

TEST(Workload, CallConstructors) {
  const RpcCall call = make_double_array_call({1.0, 2.0});
  EXPECT_EQ(call.method, "sendData");
  EXPECT_EQ(call.service_namespace, "urn:bsoap-bench");
  ASSERT_EQ(call.params.size(), 1u);
  EXPECT_EQ(call.params[0].name, "data");
  EXPECT_EQ(call.params[0].value.doubles().size(), 2u);
}

}  // namespace
}  // namespace bsoap::soap
