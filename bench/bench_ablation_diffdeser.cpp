// Ablation: differential deserialization (paper Section 6 future work).
//
// Server-side receive cost for a stream of similar messages:
//   * FullParse    — conventional envelope parse every message;
//   * ContentHit   — identical message, one memcmp against the cache;
//   * FastParse    — a few same-width values changed, only those regions
//                    re-parsed.
#include "bench/bench_common.hpp"
#include "buffer/sinks.hpp"
#include "core/diff_deserializer.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

std::string serialize(const soap::RpcCall& call) {
  buffer::StringSink sink;
  soap::write_rpc_envelope(sink, call);
  return sink.take();
}

void register_figure() {
  register_series("AblationDiffDeser/FullParse/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const std::string doc = serialize(soap::make_double_array_call(
                        soap::doubles_with_serialized_length(n, 18, 1)));
                    for (auto _ : state) {
                      Result<soap::RpcCall> call = soap::read_rpc_envelope(doc);
                      BSOAP_ASSERT(call.ok());
                      benchmark::DoNotOptimize(call.value().params.size());
                    }
                  });

  register_series("AblationDiffDeser/ContentHit/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const std::string doc = serialize(soap::make_double_array_call(
                        soap::doubles_with_serialized_length(n, 18, 1)));
                    core::DiffDeserializer deser;
                    (void)deser.parse(doc);
                    for (auto _ : state) {
                      Result<const soap::RpcCall*> call = deser.parse(doc);
                      BSOAP_ASSERT(call.ok());
                      benchmark::DoNotOptimize(call.value());
                    }
                  });

  register_series(
      "AblationDiffDeser/FastParse_5pctChanged/Double",
      [](benchmark::State& state, std::size_t n) {
        auto values = soap::doubles_with_serialized_length(n, 18, 1);
        core::DiffDeserializer deser;
        (void)deser.parse(serialize(soap::make_double_array_call(values)));
        // Pre-generate alternating documents with 5% same-width changes.
        const auto pool = soap::doubles_with_serialized_length(n, 18, 2);
        const std::size_t changes = n >= 20 ? n / 20 : 1;
        std::vector<std::string> docs;
        for (int variant = 0; variant < 2; ++variant) {
          auto v = values;
          for (std::size_t c = 0; c < changes && c < n; ++c) {
            const std::size_t idx = (c * 19 + static_cast<std::size_t>(variant)) % n;
            v[idx] = pool[idx];
          }
          docs.push_back(serialize(soap::make_double_array_call(v)));
        }
        bool flip = false;
        for (auto _ : state) {
          flip = !flip;
          Result<const soap::RpcCall*> call = deser.parse(docs[flip ? 0 : 1]);
          BSOAP_ASSERT(call.ok());
          benchmark::DoNotOptimize(call.value());
        }
        state.counters["fast_parses"] =
            static_cast<double>(deser.stats().fast_parses);
      });
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
