// Ablation: differential deserialization (paper Section 6 future work).
//
// Server-side receive cost for a stream of similar messages, measured on
// the SAME code paths the server runtime drives (core::DiffDeserializer,
// which ParsedReplica wraps under the replica lease):
//   * FullParse    — conventional envelope parse every message;
//   * ContentHit   — identical message through the connection-level diff
//                    parser: one memcmp against the cache;
//   * Replay       — the server's header-only replay path: apply_runs with
//                    zero runs (no memcmp — the patch checksum already
//                    proved the body unchanged);
//   * FastParse    — 5% same-width values changed, delivered as the dirty
//                    runs a patch frame carries: apply_runs re-parses only
//                    the touched leaf regions.
// The end-to-end counterpart (real round trips, both engines) is
// bench_diffdeser; this figure isolates the deserializer itself.
#include <span>
#include <vector>

#include "bench/bench_common.hpp"
#include "buffer/sinks.hpp"
#include "core/diff_deserializer.hpp"
#include "soap/envelope_reader.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

std::string serialize(const soap::RpcCall& call) {
  buffer::StringSink sink;
  soap::write_rpc_envelope(sink, call);
  return sink.take();
}

/// Byte-diffs two same-length documents into the dirty runs a patch frame
/// would carry, merging runs separated by at most `merge_gap` unchanged
/// bytes (the shape SendPipeline's journal produces).
std::vector<core::DiffDeserializer::DirtyRun> byte_diff_runs(
    const std::string& old_doc, const std::string& fresh,
    std::size_t merge_gap) {
  std::vector<core::DiffDeserializer::DirtyRun> runs;
  std::size_t i = 0;
  while (i < old_doc.size()) {
    if (old_doc[i] == fresh[i]) {
      ++i;
      continue;
    }
    const std::size_t begin = i;
    while (i < old_doc.size() && old_doc[i] != fresh[i]) ++i;
    if (!runs.empty() &&
        begin - (runs.back().offset + runs.back().length) <= merge_gap) {
      runs.back().length = i - runs.back().offset;
    } else {
      runs.push_back(core::DiffDeserializer::DirtyRun{begin, i - begin});
    }
  }
  return runs;
}

void register_figure() {
  register_series("AblationDiffDeser/FullParse/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const std::string doc = serialize(soap::make_double_array_call(
                        soap::doubles_with_serialized_length(n, 18, 1)));
                    for (auto _ : state) {
                      Result<soap::RpcCall> call = soap::read_rpc_envelope(doc);
                      BSOAP_ASSERT(call.ok());
                      benchmark::DoNotOptimize(call.value().params.size());
                    }
                  });

  register_series("AblationDiffDeser/ContentHit/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const std::string doc = serialize(soap::make_double_array_call(
                        soap::doubles_with_serialized_length(n, 18, 1)));
                    core::DiffDeserializer deser;
                    (void)deser.parse(doc);
                    for (auto _ : state) {
                      Result<const soap::RpcCall*> call = deser.parse(doc);
                      BSOAP_ASSERT(call.ok());
                      benchmark::DoNotOptimize(call.value());
                    }
                  });

  register_series("AblationDiffDeser/Replay/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const std::string doc = serialize(soap::make_double_array_call(
                        soap::doubles_with_serialized_length(n, 18, 1)));
                    core::DiffDeserializer deser;
                    (void)deser.prime(doc);
                    for (auto _ : state) {
                      Result<core::DiffDeserializer::ApplyReport> report =
                          deser.apply_runs(doc, {});
                      BSOAP_ASSERT(report.ok());
                      benchmark::DoNotOptimize(&deser.call());
                    }
                    state.counters["content_hits"] =
                        static_cast<double>(deser.stats().content_hits);
                  });

  register_series(
      "AblationDiffDeser/FastParse_5pctChanged/Double",
      [](benchmark::State& state, std::size_t n) {
        auto values = soap::doubles_with_serialized_length(n, 18, 1);
        const std::string base =
            serialize(soap::make_double_array_call(values));
        core::DiffDeserializer deser;
        (void)deser.prime(base);
        // Pre-generate alternating documents with 5% same-width changes,
        // plus the dirty runs each transition would carry in a patch frame
        // (run extraction is the sender's cost, not the receiver's).
        const auto pool = soap::doubles_with_serialized_length(n, 18, 2);
        const std::size_t changes = n >= 20 ? n / 20 : 1;
        std::vector<std::string> docs;
        for (int variant = 0; variant < 2; ++variant) {
          auto v = values;
          for (std::size_t c = 0; c < changes && c < n; ++c) {
            const std::size_t idx = (c * 19 + static_cast<std::size_t>(variant)) % n;
            v[idx] = pool[idx];
          }
          docs.push_back(serialize(soap::make_double_array_call(v)));
        }
        std::vector<std::vector<core::DiffDeserializer::DirtyRun>> runs = {
            byte_diff_runs(docs[1], docs[0], 18),
            byte_diff_runs(docs[0], docs[1], 18)};
        bool flip = false;
        // First transition: base -> docs[0].
        (void)deser.apply_runs(docs[0], byte_diff_runs(base, docs[0], 18));
        for (auto _ : state) {
          flip = !flip;
          const std::size_t next = flip ? 1 : 0;
          Result<core::DiffDeserializer::ApplyReport> report =
              deser.apply_runs(docs[next], runs[next]);
          BSOAP_ASSERT(report.ok());
          benchmark::DoNotOptimize(&deser.call());
        }
        state.counters["fast_parses"] =
            static_cast<double>(deser.stats().fast_parses);
        state.counters["demotions"] =
            static_cast<double>(deser.stats().demotions);
      });
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
