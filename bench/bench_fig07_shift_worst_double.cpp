// Figure 7: Worst-case shifting, arrays of doubles.
// Every double expands from the smallest (1 character) to the largest (24
// characters), with 8K and 32K chunks, vs the no-shifting reference.
#include "bench/shift_series.hpp"

namespace {
void register_figure() {
  using namespace bsoap::bench;
  register_shift_double("Fig07_WorstShift/Shift100pct_32KChunks/Double", 1, 24,
                        100, 32 * 1024);
  register_shift_double("Fig07_WorstShift/Shift100pct_8KChunks/Double", 1, 24,
                        100, 8 * 1024);
  register_noshift_double("Fig07_WorstShift/NoShift_Reserialize100pct/Double",
                          24);
}
}  // namespace

BSOAP_BENCH_MAIN(register_figure)
