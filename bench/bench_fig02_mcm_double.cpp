// Figure 2: Message Content Matches, arrays of doubles (plus the XSOAP-like
// managed-runtime baseline, as the paper plots for this figure).
// Paper shape: XSOAP slowest; content match ~10x faster than full
// serialization for large arrays.
#include "bench/mcm_series.hpp"

namespace {
void register_figure() {
  bsoap::bench::register_mcm_figure("Fig02_MCM",
                                    bsoap::bench::ElementKind::kDouble,
                                    /*with_xsoap=*/true);
}
}  // namespace

BSOAP_BENCH_MAIN(register_figure)
