// Resilience under injected faults: differential send throughput at 0%, 1%
// and 5% per-write failure rates, against the from-scratch baseline.
//
// Each point runs a pooled, retrying client (0 ms backoff — the bench
// measures recovery work, not sleep) against the drain server through
// faulty_dialer: every dialed connection injects seeded probabilistic short
// writes. A failed write discards the connection, rolls the template back,
// and retries on a fresh one; the match-kind counters then prove recovery
// correctness — same-width value rewrites must classify as perfect
// structural matches (and unchanged resends as content matches) even when
// sends fail and retry mid-stream. check_match_kinds.py gates on the
// "/FaultRecovery" counters: no partial matches, and first-time sends only
// for the initial template build plus any recovery invalidations.
//
// Series: Resilience/FaultRecovery/diff/fail_pct:{0,1,5}/N plus the
// Resilience/FullBaseline/fail_pct:* from-scratch counterpart.
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/client.hpp"
#include "net/fault_injection.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

void bench_point(benchmark::State& state, std::size_t n, bool differential,
                 double failure_rate) {
  auto server = must(net::DrainServer::start());
  const std::uint16_t port = server->port();

  net::FaultPlan plan;
  plan.write_failure_rate = failure_rate;
  plan.seed = 0xb50a9 + n;
  core::BsoapClientConfig config =
      core::BsoapClientConfig{}
          .with_differential(differential)
          .with_retry(resilience::RetryPolicy{}
                          .with_max_attempts(8)
                          .with_initial_backoff(std::chrono::milliseconds(0)));
  // Same-width rewrites with stuffing keep every update a perfect
  // structural match; a partial match in the counters means recovery
  // corrupted template state.
  config.tmpl.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
  config.tmpl.stuffing.stuff_on_expand = true;
  core::BsoapClient client(
      net::faulty_dialer([port] { return net::tcp_connect(port); }, plan),
      config);

  auto values = soap::doubles_with_serialized_length(n, 18, 5);
  const auto alternates = soap::doubles_with_serialized_length(64, 18, 6);
  must(client.send_call(soap::make_double_array_call(values)));  // prime

  MatchCounter matches;
  std::uint64_t retries = 0;
  std::uint64_t invalidated = 0;
  std::size_t step = 0;
  for (auto _ : state) {
    values[step % n] = alternates[step % alternates.size()];
    ++step;
    Result<core::SendReport> report =
        client.send_call(soap::make_double_array_call(values));
    if (!report.ok()) {
      state.SkipWithError(report.error().to_string().c_str());
      break;
    }
    matches.record(report.value().match);
    retries += report.value().attempts - 1;
    if (report.value().recovery == core::Recovery::kInvalidated) {
      ++invalidated;
    }
  }
  matches.flush(state);
  state.counters["retries"] = static_cast<double>(retries);
  state.counters["invalidated"] = static_cast<double>(invalidated);
  state.counters["dials"] =
      static_cast<double>(client.pool().stats().dials);
  state.counters["fail_pct"] = failure_rate * 100.0;
}

void register_bench() {
  for (const bool differential : {true, false}) {
    for (const double rate : {0.0, 0.01, 0.05}) {
      // Only the differential series carries the /FaultRecovery counter
      // contract; the full-serialization baseline is first-time by design.
      const std::string series =
          std::string(differential ? "Resilience/FaultRecovery/diff"
                                   : "Resilience/FullBaseline") +
          "/fail_pct:" + std::to_string(static_cast<int>(rate * 100));
      register_series(series, [differential, rate](benchmark::State& state,
                                                   std::size_t n) {
        bench_point(state, n, differential, rate);
      });
    }
  }
}

}  // namespace

BSOAP_BENCH_MAIN(register_bench)
