#!/usr/bin/env python3
"""Extract per-figure CSV series from recorded bench output.

Usage:
    python3 bench/extract_figures.py <bench_output.txt|BENCH_*.json>... [outdir]

Inputs may be console logs (regex-scraped) and/or the BENCH_<name>.json
files the bench binaries write when run with --json (preferred: exact
ns/op plus the user counters, no text parsing). The trailing argument is
the output directory when it is not an existing file.

Writes one CSV per figure/ablation (rows: series, N, wall_ms) into `outdir`
(default: figures/), ready for gnuplot/matplotlib — the paper plots Send
Time vs array size on log-log axes. Also prints a compact ASCII summary of
each figure at its largest common size.
"""
import json
import os
import re
import sys
from collections import defaultdict

LINE = re.compile(
    r"^(?P<name>[A-Za-z0-9_]+/[^ ]*?)/(?P<n>\d+)/iterations:\d+"
    r"(?:/manual_time)?\s+(?P<wall>[0-9.]+) ms\s+(?P<cpu>[0-9.]+) ms")


def load_console(path, figures):
    with open(path) as f:
        for line in f:
            m = LINE.match(line.strip())
            if not m:
                continue
            full = m.group("name")
            figure, _, series = full.partition("/")
            figures[figure][series][int(m.group("n"))] = float(m.group("wall"))


def load_json(path, figures):
    with open(path) as f:
        doc = json.load(f)
    for entry in doc.get("entries", []):
        figure, _, series = entry["series"].partition("/")
        figures[figure][series][int(entry["n"])] = entry["ns_per_op"] / 1e6


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    args = sys.argv[1:]
    outdir = "figures"
    if len(args) > 1 and not os.path.isfile(args[-1]):
        outdir = args.pop()
    os.makedirs(outdir, exist_ok=True)

    # figure -> series -> {n: wall_ms}
    figures = defaultdict(lambda: defaultdict(dict))
    for path in args:
        if path.endswith(".json"):
            load_json(path, figures)
        else:
            load_console(path, figures)

    for figure, series_map in sorted(figures.items()):
        csv_path = os.path.join(outdir, f"{figure}.csv")
        with open(csv_path, "w") as out:
            out.write("series,n,wall_ms\n")
            for series, points in sorted(series_map.items()):
                for n, wall in sorted(points.items()):
                    out.write(f"{series},{n},{wall}\n")

        sizes = set()
        for points in series_map.values():
            sizes.update(points)
        if not sizes:
            continue
        top = max(s for s in sizes
                  if all(s in p for p in series_map.values())) \
            if all(series_map.values()) else max(sizes)
        print(f"\n{figure}  (N = {top})")
        width = max(len(s) for s in series_map)
        peak = max(p.get(top, 0.0) for p in series_map.values()) or 1.0
        for series, points in sorted(series_map.items(),
                                     key=lambda kv: kv[1].get(top, 0.0)):
            wall = points.get(top)
            if wall is None:
                continue
            bar = "#" * max(1, int(40 * wall / peak))
            print(f"  {series:<{width}}  {wall:>10.3f} ms  {bar}")
        print(f"  -> {csv_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
