// Ablation: pipelined send (companion paper [3]).
//
// Plain chunk overlaying alternates serialize/send; the pipelined variant
// overlaps them with a second window and a sender thread. On a multi-core
// host the pipelined line should sit below plain overlay for large arrays;
// on a single core the two converge (no parallelism to exploit) — both
// outcomes are informative and recorded in EXPERIMENTS.md.
#include "bench/bench_common.hpp"
#include "core/overlay.hpp"
#include "core/pipelined_overlay.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

void register_figure() {
  register_series("AblationPipeline/PlainOverlay/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::OverlaySender sender(*env.transport,
                                               core::OverlayConfig{});
                    const auto values = soap::random_doubles(n, 1);
                    (void)must(sender.send_double_array(
                        "sendData", "urn:bsoap-bench", "data", values));
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(sender.send_double_array(
                          "sendData", "urn:bsoap-bench", "data", values)));
                    }
                  });

  register_series("AblationPipeline/PipelinedOverlay/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::PipelinedOverlaySender sender(
                        *env.transport, core::PipelinedOverlayConfig{});
                    const auto values = soap::random_doubles(n, 1);
                    (void)must(sender.send_double_array(
                        "sendData", "urn:bsoap-bench", "data", values));
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(sender.send_double_array(
                          "sendData", "urn:bsoap-bench", "data", values)));
                    }
                  });

  register_series("AblationPipeline/PipelinedOverlay/MIO",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::PipelinedOverlaySender sender(
                        *env.transport, core::PipelinedOverlayConfig{});
                    const auto values = soap::random_mios(n, 2);
                    (void)must(sender.send_mio_array(
                        "sendData", "urn:bsoap-bench", "data", values));
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(sender.send_mio_array(
                          "sendData", "urn:bsoap-bench", "data", values)));
                    }
                  });
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
