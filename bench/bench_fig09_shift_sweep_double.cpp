// Figure 9: Shifting sweep, arrays of doubles.
// 25/50/75/100% of the array expands from an 18-character double to the
// 24-character maximum; reference is 100% re-serialization with no shifting.
#include "bench/shift_series.hpp"

namespace {
void register_figure() {
  using namespace bsoap::bench;
  for (const int pct : {100, 75, 50, 25}) {
    register_shift_double("Fig09_ShiftSweep/Shift" + std::to_string(pct) +
                              "pct/Double",
                          18, 24, pct, 32 * 1024);
  }
  register_noshift_double("Fig09_ShiftSweep/NoShift_Reserialize100pct/Double",
                          24);
}
}  // namespace

BSOAP_BENCH_MAIN(register_figure)
