// Figure 8: Shifting sweep, arrays of MIOs.
// 25/50/75/100% of the array expands from a 36-character MIO to the
// 46-character maximum; reference is 100% re-serialization with no shifting.
// Paper shape: performance approaches the no-shift line as the shifted
// percentage drops.
#include "bench/shift_series.hpp"

namespace {
void register_figure() {
  using namespace bsoap::bench;
  for (const int pct : {100, 75, 50, 25}) {
    register_shift_mio("Fig08_ShiftSweep/Shift" + std::to_string(pct) +
                           "pct/MIO",
                       36, 46, pct, 32 * 1024);
  }
  register_noshift_mio("Fig08_ShiftSweep/NoShift_Reserialize100pct/MIO", 46);
}
}  // namespace

BSOAP_BENCH_MAIN(register_figure)
