// A/B benchmark for the vectorized textconv kernels on the differential
// update path, plus a zero-copy gate for the reactor write path.
//
// Textconv/UpdateAB — update_dirty_fields over a type-max-stuffed double
// PSM template with a contiguous 1% dirty window, run as interleaved
// scalar/vectorized round pairs (the tier flips via set_textconv_tier
// between halves of every iteration). Interleaving makes the reported
// ratio immune to the slow drift and bursty interference that make two
// separately-run series incomparable on shared CI boxes; the counter
// `update_ratio` is the median over per-pair ratios, which a handful of
// preempted rounds cannot move. Serial bulk update (cfg.bulk.parallel =
// false) so the ratio measures the kernels, not thread-pool dilution.
//
// Textconv/ReactorZeroCopy — MCM resends through the reactor engine with a
// synchronously-draining client; the server's write_copied_bytes counter
// must stay exactly 0 (every response left via the direct slice path, no
// EAGAIN tail was copied). check_match_kinds.py gates both counters.
#include <algorithm>
#include <chrono>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/client.hpp"
#include "core/diff_serializer.hpp"
#include "core/message_template.hpp"
#include "core/template_builder.hpp"
#include "server/server_runtime.hpp"
#include "soap/workload.hpp"
#include "textconv/swar.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;
using Clock = std::chrono::steady_clock;

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::nth_element(values.begin(), values.begin() + values.size() / 2,
                   values.end());
  return values[values.size() / 2];
}

void register_update_ab() {
  register_series(
      "Textconv/UpdateAB/Double",
      [](benchmark::State& state, std::size_t n) {
        core::TemplateConfig cfg;
        cfg.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
        cfg.bulk.parallel = false;
        const std::size_t block = std::max<std::size_t>(1, n / 100);
        auto tmpl = core::build_template(
            soap::make_double_array_call(
                soap::doubles_with_serialized_length(n, 17, 1)),
            cfg);
        // Three same-width value pools so consecutive rounds always rewrite
        // real digits instead of matching the previous round's bytes.
        std::vector<soap::RpcCall> calls;
        for (int s = 2; s < 5; ++s) {
          calls.push_back(soap::make_double_array_call(
              soap::doubles_with_serialized_length(n, 17, s)));
        }
        const std::size_t base_span = n - block + 1;

        std::size_t round = 0;
        auto run_round = [&](bool vectorized) {
          textconv::set_textconv_tier(vectorized
                                          ? textconv::detect_textconv_tier()
                                          : textconv::TextconvTier::kScalar);
          const soap::RpcCall& call = calls[round % calls.size()];
          const std::size_t base = (round * block * 7) % base_span;
          for (std::size_t i = base; i < base + block; ++i) {
            tmpl->dut().mark_dirty(i);
          }
          const auto t0 = Clock::now();
          (void)core::update_dirty_fields(*tmpl, call);
          const auto t1 = Clock::now();
          ++round;
          return static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count());
        };

        // Untimed warmup pairs: fault in the template pages and settle the
        // branch predictors before the first measured pair.
        for (int w = 0; w < 4; ++w) (void)run_round(w & 1);

        std::vector<double> scalar_ns;
        std::vector<double> vector_ns;
        for (auto _ : state) {
          const double s = run_round(false);
          const double v = run_round(true);
          scalar_ns.push_back(s);
          vector_ns.push_back(v);
          state.SetIterationTime(v / 1e9);
        }
        textconv::set_textconv_tier(textconv::detect_textconv_tier());

        std::vector<double> ratios;
        double scalar_sum = 0;
        double vector_sum = 0;
        for (std::size_t i = 0; i < scalar_ns.size(); ++i) {
          if (vector_ns[i] > 0) ratios.push_back(scalar_ns[i] / vector_ns[i]);
          scalar_sum += scalar_ns[i];
          vector_sum += vector_ns[i];
        }
        const double pairs = static_cast<double>(scalar_ns.size());
        const double fields = pairs * static_cast<double>(block);
        state.counters["update_ratio"] = median_of(std::move(ratios));
        state.counters["scalar_ns_per_field"] =
            fields > 0 ? scalar_sum / fields : 0.0;
        state.counters["vectorized_ns_per_field"] =
            fields > 0 ? vector_sum / fields : 0.0;
      },
      /*manual_time=*/true);
}

void register_reactor_zerocopy() {
  register_series(
      "Textconv/ReactorZeroCopy/Double",
      [](benchmark::State& state, std::size_t n) {
        soap::RpcHandler echo =
            [](const soap::RpcCall& call) -> Result<soap::Value> {
          const auto view = call.params[0].value.doubles();
          return soap::Value::from_double_array(
              std::vector<double>(view.begin(), view.end()));
        };
        server::ServerRuntimeOptions options;
        options.workers = 1;
        options.io_model = server::IoModel::kReactor;
        auto server = must(server::ServerRuntime::start(echo, options));
        auto transport = must(net::tcp_connect(server->port()));
        core::BsoapClient client(*transport);
        const soap::RpcCall call = soap::make_double_array_call(
            soap::doubles_with_serialized_length(n, 17, 1));
        (void)must(client.invoke(call));  // first-time template build
        for (auto _ : state) {
          benchmark::DoNotOptimize(must(client.invoke(call)));
        }
        const server::ServerStats stats = server->stats();
        state.counters["write_copied_bytes"] =
            static_cast<double>(stats.write_copied_bytes);
        state.counters["partial_writes"] =
            static_cast<double>(stats.partial_writes);
        transport->shutdown_send();
        server->stop();
      });
}

void register_figure() {
  register_update_ab();
  register_reactor_zerocopy();
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
