// Figure 10: Stuffing, arrays of MIOs.
// Minimum (3-char) MIOs sent inside minimum, intermediate (12-char leaves,
// ~36 total) and maximum (46-char) field widths; plus the worst case of
// writing 3-char MIOs over 46-char MIOs (full closing-tag shift). Gigabit
// wire variants expose the larger-message cost at the paper's link speed.
// Paper shape: the dominant stuffing penalty is the closing-tag shift, not
// the larger message.
#include "bench/stuff_series.hpp"

namespace {
void register_figure() {
  using namespace bsoap::bench;
  using Mode = bsoap::core::StuffingPolicy::Mode;
  register_stuff_mio("Fig10_Stuffing/MinWidth_NoTagShift/MIO", Mode::kExact, 0,
                     0.0);
  register_stuff_mio("Fig10_Stuffing/IntermediateWidth_NoTagShift/MIO",
                     Mode::kFixed, 12, 0.0);
  register_stuff_mio("Fig10_Stuffing/MaxWidth_NoTagShift/MIO", Mode::kTypeMax,
                     0, 0.0);
  register_stuff_mio_tagshift("Fig10_Stuffing/MaxWidth_FullTagShift/MIO");
  register_stuff_mio("Fig10_Stuffing/MinWidth_NoTagShift_Gigabit/MIO",
                     Mode::kExact, 0, 1e9);
  register_stuff_mio("Fig10_Stuffing/MaxWidth_NoTagShift_Gigabit/MIO",
                     Mode::kTypeMax, 0, 1e9);
}
}  // namespace

BSOAP_BENCH_MAIN(register_figure)
