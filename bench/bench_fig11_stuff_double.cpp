// Figure 11: Stuffing, arrays of doubles.
// One-character doubles sent inside minimum, intermediate (18-char) and
// maximum (24-char) field widths; plus single-character doubles written over
// 24-character doubles (full closing-tag shift), and gigabit-wire variants.
#include "bench/stuff_series.hpp"

namespace {
void register_figure() {
  using namespace bsoap::bench;
  register_stuff_double("Fig11_Stuffing/MinWidth_NoTagShift/Double", 0, 0.0);
  register_stuff_double("Fig11_Stuffing/IntermediateWidth_NoTagShift/Double",
                        18, 0.0);
  register_stuff_double("Fig11_Stuffing/MaxWidth_NoTagShift/Double", 24, 0.0);
  register_stuff_double_tagshift(
      "Fig11_Stuffing/MaxWidth_FullTagShift/Double");
  register_stuff_double("Fig11_Stuffing/MinWidth_NoTagShift_Gigabit/Double", 0,
                        1e9);
  register_stuff_double("Fig11_Stuffing/MaxWidth_NoTagShift_Gigabit/Double",
                        24, 1e9);
}
}  // namespace

BSOAP_BENCH_MAIN(register_figure)
