// Shared registration for the message-content-match figures (paper Figures
// 1, 2, 3): gSOAP-like baseline vs bSOAP full serialization vs bSOAP content
// match, over the paper's array sizes, for a given element type.
#pragma once

#include "baseline/gsoap_like.hpp"
#include "baseline/xsoap_like.hpp"
#include "bench/bench_common.hpp"
#include "core/client.hpp"
#include "soap/workload.hpp"

namespace bsoap::bench {

enum class ElementKind { kMio, kDouble, kInt };

inline soap::RpcCall make_bench_call(ElementKind kind, std::size_t n,
                                     std::uint64_t seed) {
  switch (kind) {
    case ElementKind::kMio:
      return soap::make_mio_array_call(soap::random_mios(n, seed));
    case ElementKind::kDouble:
      return soap::make_double_array_call(soap::random_doubles(n, seed));
    case ElementKind::kInt:
      return soap::make_int_array_call(soap::random_ints(n, seed));
  }
  return {};
}

inline const char* element_name(ElementKind kind) {
  switch (kind) {
    case ElementKind::kMio: return "MIO";
    case ElementKind::kDouble: return "Double";
    case ElementKind::kInt: return "Int";
  }
  return "?";
}

/// Registers the figure's series. `with_xsoap` adds the Java-toolkit
/// emulation (the paper plots it for doubles, Figure 2).
inline void register_mcm_figure(const std::string& figure, ElementKind kind,
                                bool with_xsoap) {
  const std::string elem = element_name(kind);

  if (with_xsoap) {
    register_series(figure + "/XSOAP_FullSerialization/" + elem,
                    [kind](benchmark::State& state, std::size_t n) {
                      BenchEnv env;
                      baseline::XSoapLikeClient client(*env.transport);
                      const soap::RpcCall call = make_bench_call(kind, n, 42);
                      (void)must(client.send_call(call));  // warm connection
                      for (auto _ : state) {
                        benchmark::DoNotOptimize(must(client.send_call(call)));
                      }
                      state.counters["msg_bytes"] =
                          static_cast<double>(client.last_envelope_size());
                    });
  }

  register_series(figure + "/gSOAP_FullSerialization/" + elem,
                  [kind](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    baseline::GSoapLikeClient client(*env.transport);
                    const soap::RpcCall call = make_bench_call(kind, n, 42);
                    (void)must(client.send_call(call));  // warm connection
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(client.send_call(call)));
                    }
                    state.counters["msg_bytes"] =
                        static_cast<double>(client.last_envelope_size());
                  });

  register_series(figure + "/bSOAP_FullSerialization/" + elem,
                  [kind](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::BsoapClientConfig config;
                    config.differential = false;
                    core::BsoapClient client(*env.transport, config);
                    const soap::RpcCall call = make_bench_call(kind, n, 42);
                    (void)must(client.send_call(call));  // warm connection
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(client.send_call(call)));
                    }
                  });

  register_series(figure + "/bSOAP_ContentMatch/" + elem,
                  [kind](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::BsoapClient client(*env.transport);
                    const soap::RpcCall call = make_bench_call(kind, n, 42);
                    (void)must(client.send_call(call));  // prime the template
                    MatchCounter matches;
                    for (auto _ : state) {
                      const core::SendReport report =
                          must(client.send_call(call));
                      matches.record(report.match);
                      BSOAP_ASSERT(report.match ==
                                   core::MatchKind::kContentMatch);
                    }
                    matches.flush(state);
                  });
}

}  // namespace bsoap::bench
