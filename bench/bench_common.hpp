// Shared infrastructure for the figure benchmarks.
//
// Measurement protocol mirrors the paper (Section 4): the client connects to
// a dummy drain server (reads and discards, never parses) over loopback TCP
// with the paper's socket options; "Send Time" spans message preparation
// through the final send() return. Each reported point is the mean over a
// fixed number of iterations (the paper used 100; large sizes use fewer to
// bound wall-clock time on CI machines).
//
// Array sizes are the paper's: 1, 100, 500, 1K, 10K, 50K, 100K. Override
// with BSOAP_BENCH_MAX_N to cap (e.g. BSOAP_BENCH_MAX_N=10000 for quick
// runs).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "net/drain_server.hpp"
#include "net/simulated_wire.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"

namespace bsoap::bench {

inline std::vector<std::size_t> paper_sizes() {
  std::vector<std::size_t> sizes = {1, 100, 500, 1000, 10000, 50000, 100000};
  if (const char* cap = std::getenv("BSOAP_BENCH_MAX_N")) {
    const std::size_t max_n = static_cast<std::size_t>(std::atoll(cap));
    std::vector<std::size_t> out;
    for (const std::size_t n : sizes) {
      if (n <= max_n) out.push_back(n);
    }
    if (out.empty()) out.push_back(1);
    return out;
  }
  return sizes;
}

/// Iterations per point: 100 (as in the paper) for small arrays, fewer for
/// the large ones to keep total runtime bounded.
inline int iterations_for(std::size_t n) {
  if (n <= 1000) return 100;
  if (n <= 10000) return 50;
  return 15;
}

/// Client-side environment: a drain server plus one connected transport.
struct BenchEnv {
  std::unique_ptr<net::DrainServer> server;
  std::unique_ptr<net::Transport> transport;

  /// wire_bps > 0 wraps the transport in a simulated-bandwidth link.
  explicit BenchEnv(double wire_bps = 0.0) {
    Result<std::unique_ptr<net::DrainServer>> srv = net::DrainServer::start();
    srv.value_or_die();
    server = std::move(srv.value());
    Result<std::unique_ptr<net::Transport>> conn =
        net::tcp_connect(server->port());
    conn.value_or_die();
    transport = std::move(conn.value());
    if (wire_bps > 0) {
      transport = std::make_unique<net::SimulatedWireTransport>(
          std::move(transport), wire_bps);
    }
  }

  ~BenchEnv() {
    if (transport) transport->shutdown_send();
    if (server) server->stop();
  }
};

/// Registers `fn(state, n)` once per paper size under "name/n".
template <typename Fn>
void register_series(const std::string& name, Fn fn,
                     bool manual_time = false) {
  for (const std::size_t n : paper_sizes()) {
    auto* b = benchmark::RegisterBenchmark(
        (name + "/" + std::to_string(n)).c_str(),
        [fn, n](benchmark::State& state) { fn(state, n); });
    b->Iterations(iterations_for(n))->Unit(benchmark::kMillisecond);
    if (manual_time) b->UseManualTime();
  }
}

/// Unwraps a Result or aborts with its error.
template <typename T>
T must(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench: fatal: %s\n",
                 result.error().to_string().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void must_ok(const Status& status) { status.check(); }

}  // namespace bsoap::bench

/// Each bench binary registers its series in `register_fn` then runs.
#define BSOAP_BENCH_MAIN(register_fn)                       \
  int main(int argc, char** argv) {                         \
    register_fn();                                          \
    benchmark::Initialize(&argc, argv);                     \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                             \
    benchmark::RunSpecifiedBenchmarks();                    \
    benchmark::Shutdown();                                  \
    return 0;                                               \
  }
