// Shared infrastructure for the figure benchmarks.
//
// Measurement protocol mirrors the paper (Section 4): the client connects to
// a dummy drain server (reads and discards, never parses) over loopback TCP
// with the paper's socket options; "Send Time" spans message preparation
// through the final send() return. Each reported point is the mean over a
// fixed number of iterations (the paper used 100; large sizes use fewer to
// bound wall-clock time on CI machines).
//
// Array sizes are the paper's: 1, 100, 500, 1K, 10K, 50K, 100K. Override
// with BSOAP_BENCH_MAX_N to cap (e.g. BSOAP_BENCH_MAX_N=10000 for quick
// runs).
// Passing `--json` (stripped before Google Benchmark sees the arguments)
// additionally writes BENCH_<binary>.json: one record per series point with
// ns/op and the user counters (including the match-kind tallies), consumed
// by bench/extract_figures.py and the CI match-kind smoke check.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "core/diff_serializer.hpp"
#include "net/drain_server.hpp"
#include "net/simulated_wire.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"

namespace bsoap::bench {

inline std::vector<std::size_t> paper_sizes() {
  std::vector<std::size_t> sizes = {1, 100, 500, 1000, 10000, 50000, 100000};
  if (const char* cap = std::getenv("BSOAP_BENCH_MAX_N")) {
    const std::size_t max_n = static_cast<std::size_t>(std::atoll(cap));
    std::vector<std::size_t> out;
    for (const std::size_t n : sizes) {
      if (n <= max_n) out.push_back(n);
    }
    if (out.empty()) out.push_back(1);
    return out;
  }
  return sizes;
}

/// Iterations per point: 100 (as in the paper) for small arrays, fewer for
/// the large ones to keep total runtime bounded.
inline int iterations_for(std::size_t n) {
  if (n <= 1000) return 100;
  if (n <= 10000) return 50;
  return 15;
}

/// Client-side environment: a drain server plus one connected transport.
struct BenchEnv {
  std::unique_ptr<net::DrainServer> server;
  std::unique_ptr<net::Transport> transport;

  /// wire_bps > 0 wraps the transport in a simulated-bandwidth link.
  explicit BenchEnv(double wire_bps = 0.0) {
    Result<std::unique_ptr<net::DrainServer>> srv = net::DrainServer::start();
    srv.value_or_die();
    server = std::move(srv.value());
    Result<std::unique_ptr<net::Transport>> conn =
        net::tcp_connect(server->port());
    conn.value_or_die();
    transport = std::move(conn.value());
    if (wire_bps > 0) {
      transport = std::make_unique<net::SimulatedWireTransport>(
          std::move(transport), wire_bps);
    }
  }

  ~BenchEnv() {
    if (transport) transport->shutdown_send();
    if (server) server->stop();
  }
};

/// Registers `fn(state, n)` once per paper size under "name/n".
template <typename Fn>
void register_series(const std::string& name, Fn fn,
                     bool manual_time = false) {
  for (const std::size_t n : paper_sizes()) {
    auto* b = benchmark::RegisterBenchmark(
        (name + "/" + std::to_string(n)).c_str(),
        [fn, n](benchmark::State& state) { fn(state, n); });
    b->Iterations(iterations_for(n))->Unit(benchmark::kMillisecond);
    if (manual_time) b->UseManualTime();
  }
}

/// Tallies the paper's four match kinds over a bench loop; flush() lands
/// them in the benchmark's user counters so the JSON output (and the CI
/// match-kind smoke check) can verify a series stayed in its regime —
/// a content-match series silently degrading to reserialization would
/// otherwise still "pass" with plausible numbers.
struct MatchCounter {
  std::uint64_t first_time = 0;
  std::uint64_t content_match = 0;
  std::uint64_t perfect_match = 0;
  std::uint64_t partial_match = 0;

  void record(core::MatchKind kind) {
    switch (kind) {
      case core::MatchKind::kFirstTime: ++first_time; break;
      case core::MatchKind::kContentMatch: ++content_match; break;
      case core::MatchKind::kPerfectStructural: ++perfect_match; break;
      case core::MatchKind::kPartialStructural: ++partial_match; break;
    }
  }

  void flush(benchmark::State& state) const {
    state.counters["first_time"] = static_cast<double>(first_time);
    state.counters["content_match"] = static_cast<double>(content_match);
    state.counters["perfect_match"] = static_cast<double>(perfect_match);
    state.counters["partial_match"] = static_cast<double>(partial_match);
  }
};

/// Console reporter that also captures every run for the --json dump.
class JsonSeriesReporter : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string series;  ///< registered name without the trailing /N
    std::size_t n = 0;   ///< the series point (array size)
    std::int64_t iterations = 0;
    double ns_per_op = 0.0;
    std::map<std::string, double> counters;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Entry e;
      std::string name = run.benchmark_name();
      // "Fig05/Series/Double/100000/iterations:15" -> series + n.
      const std::size_t mod = name.find("/iterations:");
      if (mod != std::string::npos) name.resize(mod);
      const std::size_t slash = name.find_last_of('/');
      if (slash != std::string::npos) {
        e.n = static_cast<std::size_t>(
            std::atoll(name.c_str() + slash + 1));
        name.resize(slash);
      }
      e.series = std::move(name);
      e.iterations = run.iterations;
      if (run.iterations > 0) {
        e.ns_per_op = run.real_accumulated_time /
                      static_cast<double>(run.iterations) * 1e9;
      }
      for (const auto& [key, counter] : run.counters) {
        e.counters[key] = counter.value;
      }
      entries_.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// Removes a literal `--json` from argv. Google Benchmark rejects flags it
/// does not know, so ours must never reach Initialize().
inline bool consume_json_flag(int* argc, char** argv) {
  for (int i = 1; i < *argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
      --*argc;
      return true;
    }
  }
  return false;
}

inline std::string bench_binary_name(const char* argv0) {
  std::string name(argv0);
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name;
}

/// Writes BENCH_<bench_name>.json into the working directory.
inline void write_bench_json(const std::string& bench_name,
                             const std::vector<JsonSeriesReporter::Entry>& entries) {
  const std::string path = "BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"entries\": [", bench_name.c_str());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const JsonSeriesReporter::Entry& e = entries[i];
    std::fprintf(f,
                 "%s\n    {\"series\": \"%s\", \"n\": %zu, "
                 "\"iterations\": %lld, \"ns_per_op\": %.3f, \"counters\": {",
                 i == 0 ? "" : ",", e.series.c_str(), e.n,
                 static_cast<long long>(e.iterations), e.ns_per_op);
    bool first = true;
    for (const auto& [key, value] : e.counters) {
      std::fprintf(f, "%s\"%s\": %.3f", first ? "" : ", ", key.c_str(), value);
      first = false;
    }
    std::fprintf(f, "}}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench: wrote %s (%zu entries)\n", path.c_str(),
               entries.size());
}

/// Unwraps a Result or aborts with its error.
template <typename T>
T must(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench: fatal: %s\n",
                 result.error().to_string().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void must_ok(const Status& status) { status.check(); }

}  // namespace bsoap::bench

/// Each bench binary registers its series in `register_fn` then runs.
/// `--json` additionally writes BENCH_<binary>.json next to the console
/// output.
#define BSOAP_BENCH_MAIN(register_fn)                                      \
  int main(int argc, char** argv) {                                        \
    const bool want_json = ::bsoap::bench::consume_json_flag(&argc, argv); \
    const std::string bench_name =                                         \
        ::bsoap::bench::bench_binary_name(argv[0]);                        \
    register_fn();                                                         \
    benchmark::Initialize(&argc, argv);                                    \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    ::bsoap::bench::JsonSeriesReporter reporter;                           \
    benchmark::RunSpecifiedBenchmarks(&reporter);                          \
    if (want_json)                                                         \
      ::bsoap::bench::write_bench_json(bench_name, reporter.entries());    \
    benchmark::Shutdown();                                                 \
    return 0;                                                              \
  }
