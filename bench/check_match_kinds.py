#!/usr/bin/env python3
"""Gate on match-kind counters recorded in BENCH_*.json files.

Usage:
    python3 bench/check_match_kinds.py BENCH_*.json

The differential benches record how every send classified
(first_time/content_match/perfect_match/partial_match) via --json. A
regression in the matcher or the bulk update path shows up here long before
it shows up as a timing change:

  * series with "/ContentMatch/" in the name must classify EVERY send as a
    content match — any rewrite means shadow state diverged;
  * series with "/ValueReserialization_" must never see a partial
    structural match or a first-time send — the workload is same-width by
    construction, so a partial match means widths or expansion logic broke;
  * series with "/FaultRecovery" (bench_resilience, differential sends
    under injected write failures) must see no partial matches, and
    first-time sends only for the initial template build plus recovery
    invalidations — anything more means rollback corrupted shadow state
    and the matcher misclassified an MCM/PSM send.

Exits non-zero listing every violated series.
"""
import json
import sys


def check_entry(bench, entry):
    series = entry["series"]
    c = entry.get("counters", {})
    first = c.get("first_time", 0)
    content = c.get("content_match", 0)
    perfect = c.get("perfect_match", 0)
    partial = c.get("partial_match", 0)
    errors = []
    if "/ContentMatch/" in series:
        if first or perfect or partial or not content:
            errors.append(
                f"{bench} {series}/{entry['n']}: expected pure content "
                f"matches, got first={first} content={content} "
                f"perfect={perfect} partial={partial}")
    if "/ValueReserialization_" in series:
        if first or partial:
            errors.append(
                f"{bench} {series}/{entry['n']}: same-width rewrites must "
                f"stay structural, got first={first} partial={partial}")
    if "/FaultRecovery" in series:
        invalidated = c.get("invalidated", 0)
        if partial or first > 1 + invalidated:
            errors.append(
                f"{bench} {series}/{entry['n']}: recovery must preserve "
                f"differential matching, got first={first} "
                f"partial={partial} invalidated={invalidated}")
    return errors


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    errors = []
    checked = 0
    for path in sys.argv[1:]:
        with open(path) as f:
            doc = json.load(f)
        for entry in doc.get("entries", []):
            if entry.get("counters"):
                checked += 1
            errors.extend(check_entry(doc.get("bench", path), entry))
    if errors:
        print(f"match-kind check FAILED ({len(errors)} violation(s)):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"match-kind check passed ({checked} counter-bearing entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
