#!/usr/bin/env python3
"""Gate on match-kind counters recorded in BENCH_*.json files.

Usage:
    python3 bench/check_match_kinds.py BENCH_*.json

The differential benches record how every send classified
(first_time/content_match/perfect_match/partial_match) via --json. A
regression in the matcher or the bulk update path shows up here long before
it shows up as a timing change:

  * series with "/ContentMatch/" in the name must classify EVERY send as a
    content match — any rewrite means shadow state diverged;
  * series with "/ValueReserialization_" must never see a partial
    structural match or a first-time send — the workload is same-width by
    construction, so a partial match means widths or expansion logic broke;
  * series with "/FaultRecovery" (bench_resilience, differential sends
    under injected write failures) must see no partial matches, and
    first-time sends only for the initial template build plus recovery
    invalidations — anything more means rollback corrupted shadow state
    and the matcher misclassified an MCM/PSM send;
  * "ServerThroughput/..." series (bench_server_throughput) are gated
    across series: after warmup, differential modes must serialize from
    scratch at most once per distinct shape (plus invalidations) — the
    shared cache may not fall back to per-worker first-time costs — and at
    each worker count the shared cache must retain strictly fewer template
    bytes than the per-worker stores (at the highest worker count, at most
    half), since one resident set per shape instead of one per worker is
    the entire point;
  * the "reactor" series (epoll engine, same shared-cache differential
    setup as "shared") is held to the same steady_first_time bound as the
    other differential modes — the event engine may not degrade match
    classification. Its req/s is gated on the idle axis below, not here:
    two series run seconds apart and single-core CI boxes drift too much
    for a cross-series ratio to be meaningful;
  * "ServerIdleConnections/paired/..." points run BOTH engines in
    alternating windows (drift-immune ratio) under an idle keep-alive
    fleet: at 0 idle connections the reactor must hold >= 0.95x the
    blocking engine's req/s, and at >= 1000 idle connections it must be
    strictly faster (the blocking pool starves there by construction);
  * "DiffWire/..." series (bench_diffwire) are gated across series: at
    1 per-mille dirty values the patch series' measured on-wire bytes per
    request must be <= 0.1x the full-send series' (the diff-wire protocol's
    reason to exist), every DiffWire entry must report failed == 0 —
    including the NACK-storm series, whose whole point is that replica
    loss degrades to full sends instead of failed requests — and the
    nackstorm series must actually have seen NACKs (else the storm never
    exercised the fallback);
  * "DiffDeser/..." series (bench_diffdeser) are gated across series: at
    <= 1% dirty the fused fast-parse receive stage must be >= 5x faster
    than the always-full-parse baseline (both engines), clean fast-parse
    series must see zero demotions, the replay series must be pure content
    hits, and every DiffDeser entry must report failed == 0;
  * "WireCompress/..." series (bench_compress) are gated across series at
    every dirty rate: the preset full re-offer series must measure <= 0.5x
    the identity full series' on-wire bytes per request (the >= 2x
    reduction the template-preset DEFLATE layer exists for), the preset
    patch series' payload bytes must be <= 1.0x the identity patch series'
    (per-message fallback guarantees a coded frame never costs more than
    the raw frame; payload, not wire, since a coded patch carries two
    extra headers), and every WireCompress entry must report failed == 0.

Exits non-zero listing every violated series.
"""
import json
import sys


def check_entry(bench, entry):
    series = entry["series"]
    c = entry.get("counters", {})
    first = c.get("first_time", 0)
    content = c.get("content_match", 0)
    perfect = c.get("perfect_match", 0)
    partial = c.get("partial_match", 0)
    errors = []
    if "/ContentMatch/" in series:
        if first or perfect or partial or not content:
            errors.append(
                f"{bench} {series}/{entry['n']}: expected pure content "
                f"matches, got first={first} content={content} "
                f"perfect={perfect} partial={partial}")
    if "/ValueReserialization_" in series:
        if first or partial:
            errors.append(
                f"{bench} {series}/{entry['n']}: same-width rewrites must "
                f"stay structural, got first={first} partial={partial}")
    if "/FaultRecovery" in series:
        invalidated = c.get("invalidated", 0)
        if partial or first > 1 + invalidated:
            errors.append(
                f"{bench} {series}/{entry['n']}: recovery must preserve "
                f"differential matching, got first={first} "
                f"partial={partial} invalidated={invalidated}")
    return errors


def check_server_throughput(bench, entries):
    """Cross-series gates for bench_server_throughput (see module doc)."""
    points = {}  # (mode, workers) -> counters
    for entry in entries:
        series = entry["series"]
        if not series.startswith("ServerThroughput/"):
            continue
        mode = series.split("/")[1]
        points[(mode, entry["n"])] = entry.get("counters", {})

    errors = []
    for (mode, workers), c in points.items():
        if not c.get("diff", 0):
            continue
        shapes = c.get("shapes", 0)
        steady = c.get("steady_first_time", 0)
        allowed = shapes + c.get("invalidated", 0)
        if steady > allowed:
            errors.append(
                f"{bench} ServerThroughput/{mode}/workers/{workers}: "
                f"steady-state first_time={steady:.0f} exceeds distinct "
                f"shapes + invalidations ({allowed:.0f}) — warm templates "
                f"are being rebuilt")

    shared_workers = sorted(w for (m, w) in points if m == "shared"
                            and ("perworker", w) in points)
    for workers in shared_workers:
        shared = points[("shared", workers)].get("retained_bytes", 0)
        per = points[("perworker", workers)].get("retained_bytes", 0)
        if workers >= 2 and shared >= per:
            errors.append(
                f"{bench} ServerThroughput workers={workers}: shared cache "
                f"retains {shared:.0f} bytes, per-worker stores {per:.0f} — "
                f"sharing saves nothing")
    if shared_workers:
        top = shared_workers[-1]
        shared = points[("shared", top)].get("retained_bytes", 0)
        per = points[("perworker", top)].get("retained_bytes", 0)
        if top >= 4 and shared > 0.5 * per:
            errors.append(
                f"{bench} ServerThroughput workers={top}: shared cache "
                f"retains {shared:.0f} bytes > 0.5x per-worker ({per:.0f})")

    # The reactor series' req/s is gated on the drift-immune
    # ServerIdleConnections axis (check_idle_connections), not across
    # ServerThroughput series; its steady_first_time is covered by the
    # differential-mode bound above.
    return errors


def check_idle_connections(bench, entries):
    """Cross-engine gates for the paired ServerIdleConnections axis."""
    errors = []
    for entry in entries:
        if not entry["series"].startswith("ServerIdleConnections/"):
            continue
        idle = entry["n"]
        c = entry.get("counters", {})
        reactor = c.get("req_per_s_reactor", 0)
        blocking = c.get("req_per_s_blocking", 0)
        if idle == 0:
            if blocking > 0 and reactor < 0.95 * blocking:
                errors.append(
                    f"{bench} ServerIdleConnections idle={idle}: reactor "
                    f"{reactor:.0f} req/s < 0.95x blocking ({blocking:.0f})")
        elif idle >= 1000:
            if reactor <= blocking:
                errors.append(
                    f"{bench} ServerIdleConnections idle={idle}: reactor "
                    f"{reactor:.0f} req/s not strictly above blocking "
                    f"({blocking:.0f}) — idle fleet no longer starves the "
                    f"pool alone")
    return errors


def check_diffwire(bench, entries):
    """Cross-series gates for bench_diffwire (see module doc)."""
    points = {}  # (mode, permille) -> counters
    errors = []
    for entry in entries:
        series = entry["series"]
        if not series.startswith("DiffWire/"):
            continue
        mode = series.split("/")[1]
        c = entry.get("counters", {})
        points[(mode, entry["n"])] = c
        if c.get("failed", 0):
            errors.append(
                f"{bench} {series}/{entry['n']}: {c['failed']:.0f} failed "
                f"request(s) — diff-wire may never fail an invoke")
        if mode == "nackstorm" and not c.get("patch_nacks", 0):
            errors.append(
                f"{bench} {series}/{entry['n']}: NACK storm saw zero NACKs "
                f"— the fallback path went unexercised")

    if ("patch", 1) in points and ("full", 1) in points:
        patch = points[("patch", 1)].get("wire_bytes_per_req", 0)
        full = points[("full", 1)].get("wire_bytes_per_req", 0)
        if full > 0 and patch > 0.1 * full:
            errors.append(
                f"{bench} DiffWire at 1 per-mille dirty: patch sends cost "
                f"{patch:.0f} wire bytes/req > 0.1x full sends "
                f"({full:.0f})")
    return errors


def check_diffdeser(bench, entries):
    """Cross-series gates for bench_diffdeser.

    * every DiffDeser entry must report failed == 0;
    * at <= 1% dirty (permille 1 and 10) the fast-parse series' receive
      parse stage must be >= 5x faster than the full-parse baseline at the
      same dirty rate, on both engines — the tentpole ratio differential
      deserialization exists for;
    * clean fast-parse series must report zero demotions (same-width
      rewrites never touch structural bytes, so any demotion means the
      region map or the run intersection broke);
    * the replay series must serve from the cache alone: content hits > 0,
      zero fast parses, and exactly the warmup's one full parse.
    """
    points = {}  # (mode, permille) -> counters
    errors = []
    for entry in entries:
        series = entry["series"]
        if not series.startswith("DiffDeser/"):
            continue
        mode = series.split("/")[1]
        c = entry.get("counters", {})
        points[(mode, entry["n"])] = c
        if c.get("failed", 0):
            errors.append(
                f"{bench} {series}/{entry['n']}: {c['failed']:.0f} failed "
                f"request(s) — differential deserialization may never fail "
                f"an invoke")
        if mode.endswith("fastparse") and c.get("demotions", 0):
            errors.append(
                f"{bench} {series}/{entry['n']}: {c['demotions']:.0f} "
                f"demotion(s) on a clean same-width series — the leaf "
                f"region map or run intersection regressed")

    for fast_mode, full_mode in (("fastparse", "fullparse"),
                                 ("reactor_fastparse", "reactor_fullparse")):
        for permille in (1, 10):
            if ((fast_mode, permille) not in points
                    or (full_mode, permille) not in points):
                continue
            fast = points[(fast_mode, permille)].get("parse_ns_per_req", 0)
            full = points[(full_mode, permille)].get("parse_ns_per_req", 0)
            if full > 0 and fast * 5 > full:
                errors.append(
                    f"{bench} DiffDeser at {permille} per-mille dirty "
                    f"({fast_mode}): fast parse {fast:.0f} ns/req is not "
                    f">= 5x faster than full parse ({full:.0f} ns/req)")

    for (mode, permille), c in points.items():
        if mode != "replay":
            continue
        if (not c.get("content_hits", 0) or c.get("fast_parses", 0)
                or c.get("full_parses", 0) != 1 or c.get("demotions", 0)):
            errors.append(
                f"{bench} DiffDeser/replay/{permille}: replays must be pure "
                f"content hits, got content_hits="
                f"{c.get('content_hits', 0):.0f} "
                f"fast={c.get('fast_parses', 0):.0f} "
                f"full={c.get('full_parses', 0):.0f} "
                f"demotions={c.get('demotions', 0):.0f}")
    return errors


def check_wire_compress(bench, entries):
    """Cross-series gates for bench_compress (see module doc)."""
    points = {}  # (mode, permille) -> counters
    errors = []
    for entry in entries:
        series = entry["series"]
        if not series.startswith("WireCompress/"):
            continue
        mode = series.split("/")[1]
        c = entry.get("counters", {})
        points[(mode, entry["n"])] = c
        if c.get("failed", 0):
            errors.append(
                f"{bench} {series}/{entry['n']}: {c['failed']:.0f} failed "
                f"request(s) — wire compression may never fail an invoke")

    for (mode, permille), c in points.items():
        if mode != "fullpreset" or ("fullid", permille) not in points:
            continue
        preset = c.get("wire_bytes_per_req", 0)
        identity = points[("fullid", permille)].get("wire_bytes_per_req", 0)
        if identity > 0 and preset > 0.5 * identity:
            errors.append(
                f"{bench} WireCompress at {permille} per-mille dirty: preset "
                f"full re-offers cost {preset:.0f} wire bytes/req > 0.5x "
                f"identity full sends ({identity:.0f}) — the template-preset "
                f"window no longer pays for itself")

    for (mode, permille), c in points.items():
        if mode != "patchpreset" or ("patchid", permille) not in points:
            continue
        preset = c.get("payload_bytes_per_req", 0)
        identity = points[("patchid", permille)].get(
            "payload_bytes_per_req", 0)
        if identity > 0 and preset > identity:
            errors.append(
                f"{bench} WireCompress at {permille} per-mille dirty: preset "
                f"patch payloads cost {preset:.0f} bytes/req > identity "
                f"patches ({identity:.0f}) — the per-message fallback is "
                f"not holding")
    return errors


def check_textconv(bench, entries):
    """Gates for the vectorized-textconv A/B and zero-copy write series.

    * "Textconv/UpdateAB/..." (and the paired ablation series) record the
      median per-pair scalar/vectorized ratio of the differential update
      stage; the vectorized tier must hold >= 1.2x at n >= 10000 and
      >= 1.3x at n >= 50000 (where the bulk rewrite fully dominates fixed
      costs; measured ~1.45x). Smaller n are informational — CI smoke runs
      with BSOAP_BENCH_MAX_N=1000 never reach the gate.
    * "Textconv/ReactorZeroCopy/..." resends through the reactor engine
      with a synchronously-draining client: write_copied_bytes must be
      exactly 0 at every size — any copied byte means a response left via
      the flatten/EAGAIN path instead of the direct slice write.
    """
    errors = []
    for entry in entries:
        series = entry["series"]
        c = entry.get("counters", {})
        if series.startswith("Textconv/UpdateAB/"):
            ratio = c.get("update_ratio", 0)
            floor = 1.3 if entry["n"] >= 50000 else (
                1.2 if entry["n"] >= 10000 else 0)
            if floor and ratio < floor:
                errors.append(
                    f"{bench} {series}/{entry['n']}: vectorized update "
                    f"speedup {ratio:.2f}x < {floor}x — the SWAR/SIMD "
                    f"kernels regressed or the scalar path is being "
                    f"dispatched")
        if series.startswith("Textconv/ReactorZeroCopy/"):
            copied = c.get("write_copied_bytes", -1)
            if copied != 0:
                errors.append(
                    f"{bench} {series}/{entry['n']}: write_copied_bytes="
                    f"{copied:.0f} — reactor responses must leave via the "
                    f"zero-copy slice path when the client drains promptly")
    return errors


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    errors = []
    checked = 0
    for path in sys.argv[1:]:
        with open(path) as f:
            doc = json.load(f)
        for entry in doc.get("entries", []):
            if entry.get("counters"):
                checked += 1
            errors.extend(check_entry(doc.get("bench", path), entry))
        errors.extend(
            check_server_throughput(doc.get("bench", path),
                                    doc.get("entries", [])))
        errors.extend(
            check_idle_connections(doc.get("bench", path),
                                   doc.get("entries", [])))
        errors.extend(
            check_diffwire(doc.get("bench", path), doc.get("entries", [])))
        errors.extend(
            check_diffdeser(doc.get("bench", path), doc.get("entries", [])))
        errors.extend(
            check_wire_compress(doc.get("bench", path),
                                doc.get("entries", [])))
        errors.extend(
            check_textconv(doc.get("bench", path), doc.get("entries", [])))
    if errors:
        print(f"match-kind check FAILED ({len(errors)} violation(s)):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"match-kind check passed ({checked} counter-bearing entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
