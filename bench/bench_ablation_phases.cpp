// Ablation: serialization phase breakdown (paper Section 2).
//
// The paper attributes ~90% of SOAP end-to-end time to number->ASCII
// conversion. This bench decomposes a full double-array serialization into:
//   * Convert        — dtoa only, output discarded;
//   * ConvertAndPack — full envelope into a NullSink (conversion + tag
//                      emission, no buffer retention);
//   * Serialize      — full envelope into the contiguous buffer;
//   * SerializeSend  — serialize + HTTP frame + send to the drain server;
//   * PackOnly       — memcpy of a preserialized envelope (no conversion).
//
// The Pipeline* series use the differential send path's own SendObserver
// instead of ad-hoc timers: each stage's share of a perfect-structural-match
// send (resolve / update / frame / write) is reported as the iteration's
// manual time, so the breakdown is exactly what the production path measures
// about itself.
#include <algorithm>

#include "bench/bench_common.hpp"
#include "buffer/sinks.hpp"
#include "core/client.hpp"
#include "core/send_pipeline.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"
#include "textconv/dtoa.hpp"
#include "textconv/swar.hpp"

#include "baseline/gsoap_like.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

/// One series per pipeline stage: PSM sends (every value rewritten, no
/// expansion) with the stage's observer time as the manual iteration time.
void register_pipeline_stage_series(core::SendStage stage) {
  register_series(
      std::string("AblationPhases/Pipeline") +
          [&] {
            std::string name(core::send_stage_name(stage));
            name[0] = static_cast<char>(name[0] - 'a' + 'A');
            return name;
          }() +
          "/Double",
      [stage](benchmark::State& state, std::size_t n) {
        BenchEnv env;
        core::BsoapClient client(*env.transport);
        core::StageTimings timings;
        client.pipeline().set_observer(&timings);
        // Two same-width value sets: alternating keeps every send a perfect
        // structural match with all n values rewritten.
        const auto a = soap::doubles_with_serialized_length(n, 18, 1);
        const auto b = soap::doubles_with_serialized_length(n, 18, 2);
        (void)must(client.send_call(soap::make_double_array_call(a)));
        bool use_b = true;
        for (auto _ : state) {
          timings.reset();
          (void)must(client.send_call(
              soap::make_double_array_call(use_b ? b : a)));
          use_b = !use_b;
          state.SetIterationTime(
              static_cast<double>(timings.totals(stage).ns) / 1e9);
        }
      },
      /*manual_time=*/true);
}

void register_figure() {
  for (const core::SendStage stage :
       {core::SendStage::kResolve, core::SendStage::kUpdate,
        core::SendStage::kFrame, core::SendStage::kWrite}) {
    register_pipeline_stage_series(stage);
  }

  // Paired scalar/vectorized update-stage series: each iteration runs one
  // PSM send with the scalar textconv tier and one with the vectorized
  // tier, reporting the vectorized update-stage time as the iteration and
  // the per-pair ratio in the counters. Pairing inside one iteration makes
  // the ratio drift-immune (same methodology as Textconv/UpdateAB).
  register_series(
      "AblationPhases/PipelineUpdatePaired/Double",
      [](benchmark::State& state, std::size_t n) {
        BenchEnv env;
        core::BsoapClient client(*env.transport);
        core::StageTimings timings;
        client.pipeline().set_observer(&timings);
        const auto a = soap::doubles_with_serialized_length(n, 18, 1);
        const auto b = soap::doubles_with_serialized_length(n, 18, 2);
        (void)must(client.send_call(soap::make_double_array_call(a)));
        bool use_b = true;
        auto timed_send = [&](bool vectorized) {
          textconv::set_textconv_tier(vectorized
                                          ? textconv::detect_textconv_tier()
                                          : textconv::TextconvTier::kScalar);
          timings.reset();
          (void)must(client.send_call(
              soap::make_double_array_call(use_b ? b : a)));
          use_b = !use_b;
          return static_cast<double>(
              timings.totals(core::SendStage::kUpdate).ns);
        };
        std::vector<double> ratios;
        double scalar_sum = 0;
        double vector_sum = 0;
        for (auto _ : state) {
          const double s = timed_send(false);
          const double v = timed_send(true);
          scalar_sum += s;
          vector_sum += v;
          if (v > 0) ratios.push_back(s / v);
          state.SetIterationTime(v / 1e9);
        }
        textconv::set_textconv_tier(textconv::detect_textconv_tier());
        if (!ratios.empty()) {
          std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                           ratios.end());
          state.counters["update_ratio"] = ratios[ratios.size() / 2];
        }
        state.counters["scalar_update_ns"] =
            state.iterations() > 0
                ? scalar_sum / static_cast<double>(state.iterations())
                : 0.0;
        state.counters["vectorized_update_ns"] =
            state.iterations() > 0
                ? vector_sum / static_cast<double>(state.iterations())
                : 0.0;
      },
      /*manual_time=*/true);

  register_series("AblationPhases/Convert/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const auto values = soap::random_doubles(n, 1);
                    char buf[textconv::kMaxDoubleChars];
                    for (auto _ : state) {
                      int total = 0;
                      for (const double v : values) {
                        total += textconv::write_double(buf, v);
                      }
                      benchmark::DoNotOptimize(total);
                    }
                  });

  register_series("AblationPhases/ConvertAndPack/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    buffer::NullSink sink;
                    for (auto _ : state) {
                      sink.clear();
                      soap::write_rpc_envelope(sink, call);
                      benchmark::DoNotOptimize(sink.size());
                    }
                  });

  register_series("AblationPhases/Serialize/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    buffer::StringSink sink;
                    for (auto _ : state) {
                      sink.clear();
                      soap::write_rpc_envelope(sink, call);
                      benchmark::DoNotOptimize(sink.size());
                    }
                  });

  register_series("AblationPhases/SerializeSend/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    baseline::GSoapLikeClient client(*env.transport);
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    (void)must(client.send_call(call));  // warm connection
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(client.send_call(call)));
                    }
                  });

  register_series("AblationPhases/PackOnly/Double",
                  [](benchmark::State& state, std::size_t n) {
                    buffer::StringSink prebuilt;
                    soap::write_rpc_envelope(
                        prebuilt,
                        soap::make_double_array_call(soap::random_doubles(n, 1)));
                    const std::string envelope = prebuilt.take();
                    std::string target;
                    target.reserve(envelope.size());
                    for (auto _ : state) {
                      target.assign(envelope);
                      benchmark::DoNotOptimize(target.data());
                    }
                  });
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
