// Ablation: serialization phase breakdown (paper Section 2).
//
// The paper attributes ~90% of SOAP end-to-end time to number->ASCII
// conversion. This bench decomposes a full double-array serialization into:
//   * Convert        — dtoa only, output discarded;
//   * ConvertAndPack — full envelope into a NullSink (conversion + tag
//                      emission, no buffer retention);
//   * Serialize      — full envelope into the contiguous buffer;
//   * SerializeSend  — serialize + HTTP frame + send to the drain server;
//   * PackOnly       — memcpy of a preserialized envelope (no conversion).
#include "bench/bench_common.hpp"
#include "buffer/sinks.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"
#include "textconv/dtoa.hpp"

#include "baseline/gsoap_like.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

void register_figure() {
  register_series("AblationPhases/Convert/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const auto values = soap::random_doubles(n, 1);
                    char buf[textconv::kMaxDoubleChars];
                    for (auto _ : state) {
                      int total = 0;
                      for (const double v : values) {
                        total += textconv::write_double(buf, v);
                      }
                      benchmark::DoNotOptimize(total);
                    }
                  });

  register_series("AblationPhases/ConvertAndPack/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    buffer::NullSink sink;
                    for (auto _ : state) {
                      sink.clear();
                      soap::write_rpc_envelope(sink, call);
                      benchmark::DoNotOptimize(sink.size());
                    }
                  });

  register_series("AblationPhases/Serialize/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    buffer::StringSink sink;
                    for (auto _ : state) {
                      sink.clear();
                      soap::write_rpc_envelope(sink, call);
                      benchmark::DoNotOptimize(sink.size());
                    }
                  });

  register_series("AblationPhases/SerializeSend/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    baseline::GSoapLikeClient client(*env.transport);
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    (void)must(client.send_call(call));  // warm connection
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(client.send_call(call)));
                    }
                  });

  register_series("AblationPhases/PackOnly/Double",
                  [](benchmark::State& state, std::size_t n) {
                    buffer::StringSink prebuilt;
                    soap::write_rpc_envelope(
                        prebuilt,
                        soap::make_double_array_call(soap::random_doubles(n, 1)));
                    const std::string envelope = prebuilt.take();
                    std::string target;
                    target.reserve(envelope.size());
                    for (auto _ : state) {
                      target.assign(envelope);
                      benchmark::DoNotOptimize(target.data());
                    }
                  });
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
