// Server throughput: requests/second against the bounded worker-pool
// runtime, workers x {full re-serialization, differential responses}.
//
// Each point runs one persistent keep-alive client connection per worker
// (a keep-alive connection pins its worker, so this saturates the pool),
// every client performing full RPC round trips (send + parse response). The
// handler returns a fixed double array, so with diff_responses enabled every
// response after the first per worker leaves via the content-match fast
// path — the response-side analogue of the paper's Figures 1-3. The
// acceptance bar is diff >= baseline at every worker count (items_per_second
// column; higher is better).
#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/client.hpp"
#include "server/server_runtime.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

/// Response payload: large enough that response serialization dominates the
/// handler cost. BSOAP_BENCH_MAX_N caps it for quick runs.
std::size_t response_array_size() {
  std::size_t n = 500;
  if (const char* cap = std::getenv("BSOAP_BENCH_MAX_N")) {
    const auto max_n = static_cast<std::size_t>(std::atoll(cap));
    if (max_n >= 1 && max_n < n) n = max_n;
  }
  return n;
}

constexpr int kRequestsPerClient = 40;

void bench_point(benchmark::State& state, std::size_t workers,
                 bool diff_responses) {
  const auto payload = soap::random_doubles(response_array_size(), 7);
  server::ServerRuntimeOptions options;
  options.workers = workers;
  options.diff_responses = diff_responses;
  auto server = must(server::ServerRuntime::start(
      [payload](const soap::RpcCall&) -> Result<soap::Value> {
        return soap::Value::from_double_array(payload);
      },
      options));

  struct ClientSlot {
    std::unique_ptr<net::Transport> transport;
    std::unique_ptr<core::BsoapClient> client;
  };
  const std::size_t client_count = workers;
  std::vector<ClientSlot> slots(client_count);
  soap::RpcCall call;
  call.method = "fetch";
  call.service_namespace = "urn:bsoap-bench";
  call.params.push_back(soap::Param{"key", soap::Value::from_int(1)});
  for (ClientSlot& slot : slots) {
    slot.transport = must(net::tcp_connect(server->port()));
    slot.client = std::make_unique<core::BsoapClient>(*slot.transport);
    (void)must(slot.client->invoke(call));  // prime the connection
  }

  std::atomic<int> errors{0};
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(client_count);
    for (ClientSlot& slot : slots) {
      threads.emplace_back([&slot, &call, &errors] {
        for (int i = 0; i < kRequestsPerClient; ++i) {
          if (!slot.client->invoke(call).ok()) {
            errors.fetch_add(1);
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  if (errors.load() != 0) {
    state.SkipWithError("request failed");
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(client_count) *
                          kRequestsPerClient);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["diff"] = diff_responses ? 1 : 0;
  server->stop();
}

void register_bench() {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    for (const bool diff : {false, true}) {
      const std::string name = "ServerThroughput/workers:" +
                               std::to_string(workers) +
                               (diff ? "/diff" : "/full");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [workers, diff](benchmark::State& state) {
            bench_point(state, workers, diff);
          })
          ->Iterations(5)
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
}

}  // namespace

BSOAP_BENCH_MAIN(register_bench)
