// Server throughput: requests/second against the bounded worker-pool
// runtime, workers x {full re-serialization, per-worker differential
// stores, shared template cache}.
//
// Each point runs one persistent keep-alive client connection per worker
// (a keep-alive connection pins its worker, so this saturates the pool),
// every client performing full RPC round trips (send + parse response)
// over kShapes distinct RPC shapes, staggered so different clients are on
// different shapes at any instant. The handler returns a fixed double array
// per shape, so steady-state responses leave via the content-match fast
// path. A warmup phase populates the template stores before the timed loop;
// the counters record the steady-state deltas:
//
//   steady_first_time — responses serialized from scratch after warmup.
//     Per-worker stores and the shared cache should both be ~0; the shared
//     cache is allowed up to `shapes` late replica publishes (contended
//     checkouts that built a new replica) plus any invalidations.
//   retained_bytes — template memory at the end of the run. Per-worker
//     mode scales as workers x shapes; shared mode as shapes x replicas,
//     which is the point of the cache (checked by check_match_kinds.py).
//
// The acceptance bar is diff >= full at every worker count and shared
// within a few percent of per-worker req/s while retaining a fraction of
// the bytes (items_per_second column; higher is better).
#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/client.hpp"
#include "server/server_runtime.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

/// Response payload baseline: large enough that response serialization
/// dominates the handler cost. BSOAP_BENCH_MAX_N caps it for quick runs.
std::size_t response_array_size() {
  std::size_t n = 500;
  if (const char* cap = std::getenv("BSOAP_BENCH_MAX_N")) {
    const auto max_n = static_cast<std::size_t>(std::atoll(cap));
    if (max_n >= 1 && max_n < n) n = max_n;
  }
  return n;
}

constexpr std::size_t kShapes = 4;
constexpr int kRequestsPerClient = 40;
constexpr int kWarmupRounds = 2;

enum class Mode { kFull, kPerWorker, kShared };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kFull: return "full";
    case Mode::kPerWorker: return "perworker";
    case Mode::kShared: return "shared";
  }
  return "?";
}

void bench_point(benchmark::State& state, std::size_t workers, Mode mode) {
  // kShapes distinct response array lengths -> distinct response structure
  // signatures, so the server juggles several templates, not one.
  const std::size_t base = response_array_size();
  std::vector<std::vector<double>> payloads;
  for (std::size_t s = 0; s < kShapes; ++s) {
    payloads.push_back(soap::random_doubles(base + 7 * s, 7 + s));
  }

  server::ServerRuntimeOptions options;
  options.workers = workers;
  options.diff_responses = mode != Mode::kFull;
  options.shared_cache = mode == Mode::kShared;
  auto server = must(server::ServerRuntime::start(
      [&payloads](const soap::RpcCall& call) -> Result<soap::Value> {
        const std::size_t shape =
            static_cast<std::size_t>(call.params[0].value.as_int()) % kShapes;
        return soap::Value::from_double_array(payloads[shape]);
      },
      options));

  std::vector<soap::RpcCall> calls(kShapes);
  for (std::size_t s = 0; s < kShapes; ++s) {
    calls[s].method = "fetch";
    calls[s].service_namespace = "urn:bsoap-bench";
    calls[s].params.push_back(
        soap::Param{"key", soap::Value::from_int(static_cast<std::int32_t>(s))});
  }

  struct ClientSlot {
    std::unique_ptr<net::Transport> transport;
    std::unique_ptr<core::BsoapClient> client;
  };
  const std::size_t client_count = workers;
  std::vector<ClientSlot> slots(client_count);
  for (ClientSlot& slot : slots) {
    slot.transport = must(net::tcp_connect(server->port()));
    slot.client = std::make_unique<core::BsoapClient>(*slot.transport);
  }

  std::atomic<int> errors{0};
  // Client c starts at shape c, so at any instant the pool is spread across
  // shapes (the contention pattern a shared cache must absorb).
  const auto run_rounds = [&](int rounds) {
    std::vector<std::thread> threads;
    threads.reserve(client_count);
    for (std::size_t c = 0; c < client_count; ++c) {
      threads.emplace_back([&, c] {
        ClientSlot& slot = slots[c];
        for (int i = 0; i < rounds; ++i) {
          const std::size_t shape = (c + static_cast<std::size_t>(i)) % kShapes;
          if (!slot.client->invoke(calls[shape]).ok()) {
            errors.fetch_add(1);
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  };

  // Warmup: every client touches every shape under full concurrency, so
  // first-time builds, contended publishes and clone provisioning all land
  // before the steady-state snapshot.
  run_rounds(kWarmupRounds * static_cast<int>(kShapes));
  const server::ServerStats warm = server->stats();

  for (auto _ : state) {
    run_rounds(kRequestsPerClient);
  }
  if (errors.load() != 0) {
    state.SkipWithError("request failed");
  }
  const server::ServerStats done = server->stats();

  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(client_count) *
                          kRequestsPerClient);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["shapes"] = static_cast<double>(kShapes);
  state.counters["diff"] = mode != Mode::kFull ? 1 : 0;
  state.counters["shared"] = mode == Mode::kShared ? 1 : 0;
  state.counters["steady_first_time"] =
      static_cast<double>(done.response_first_time - warm.response_first_time);
  state.counters["retained_bytes"] =
      static_cast<double>(done.response_template_bytes);
  state.counters["invalidated"] =
      static_cast<double>(done.cache_invalidations - warm.cache_invalidations);
  state.counters["cache_clones"] = static_cast<double>(done.cache_clones);
  state.counters["cache_contended"] =
      static_cast<double>(done.cache_contended);
  server->stop();
}

void register_bench() {
  for (const Mode mode : {Mode::kFull, Mode::kPerWorker, Mode::kShared}) {
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      // Mode before the numeric suffix: the JSON reporter parses the
      // trailing "/N" as the series point, so workers must come last.
      const std::string name = std::string("ServerThroughput/") +
                               mode_name(mode) + "/workers/" +
                               std::to_string(workers);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [workers, mode](benchmark::State& state) {
            bench_point(state, workers, mode);
          })
          ->Iterations(3)
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
}

}  // namespace

BSOAP_BENCH_MAIN(register_bench)
