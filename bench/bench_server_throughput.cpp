// Server throughput: requests/second against the bounded worker-pool
// runtime, workers x {full re-serialization, per-worker differential
// stores, shared template cache}.
//
// Each point runs one persistent keep-alive client connection per worker
// (a keep-alive connection pins its worker, so this saturates the pool),
// every client performing full RPC round trips (send + parse response)
// over kShapes distinct RPC shapes, staggered so different clients are on
// different shapes at any instant. The handler returns a fixed double array
// per shape, so steady-state responses leave via the content-match fast
// path. A warmup phase populates the template stores before the timed loop;
// the counters record the steady-state deltas:
//
//   steady_first_time — responses serialized from scratch after warmup.
//     Per-worker stores and the shared cache should both be ~0; the shared
//     cache is allowed up to `shapes` late replica publishes (contended
//     checkouts that built a new replica) plus any invalidations.
//   retained_bytes — template memory at the end of the run. Per-worker
//     mode scales as workers x shapes; shared mode as shapes x replicas,
//     which is the point of the cache (checked by check_match_kinds.py).
//
// The acceptance bar is diff >= full at every worker count and shared
// within a few percent of per-worker req/s while retaining a fraction of
// the bytes (items_per_second column; higher is better).
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/client.hpp"
#include "server/server_runtime.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

/// Response payload baseline: large enough that response serialization
/// dominates the handler cost. BSOAP_BENCH_MAX_N caps it for quick runs.
std::size_t response_array_size() {
  std::size_t n = 500;
  if (const char* cap = std::getenv("BSOAP_BENCH_MAX_N")) {
    const auto max_n = static_cast<std::size_t>(std::atoll(cap));
    if (max_n >= 1 && max_n < n) n = max_n;
  }
  return n;
}

constexpr std::size_t kShapes = 4;
constexpr int kRequestsPerClient = 40;
constexpr int kWarmupRounds = 2;

enum class Mode { kFull, kPerWorker, kShared, kReactor };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kFull: return "full";
    case Mode::kPerWorker: return "perworker";
    case Mode::kShared: return "shared";
    case Mode::kReactor: return "reactor";
  }
  return "?";
}

void bench_point(benchmark::State& state, std::size_t workers, Mode mode) {
  // kShapes distinct response array lengths -> distinct response structure
  // signatures, so the server juggles several templates, not one.
  const std::size_t base = response_array_size();
  std::vector<std::vector<double>> payloads;
  for (std::size_t s = 0; s < kShapes; ++s) {
    payloads.push_back(soap::random_doubles(base + 7 * s, 7 + s));
  }

  server::ServerRuntimeOptions options;
  options.workers = workers;
  options.diff_responses = mode != Mode::kFull;
  // The reactor series is the shared-cache differential setup on the epoll
  // engine, so the delta against "shared" isolates the connection core.
  // (Per-worker stores assume connections pin to workers; reactor dispatch
  // does not pin, so any worker can see a shape it never built.)
  options.shared_cache = mode == Mode::kShared || mode == Mode::kReactor;
  options.io_model = mode == Mode::kReactor ? server::IoModel::kReactor
                                            : server::IoModel::kBlocking;
  auto server = must(server::ServerRuntime::start(
      [&payloads](const soap::RpcCall& call) -> Result<soap::Value> {
        const std::size_t shape =
            static_cast<std::size_t>(call.params[0].value.as_int()) % kShapes;
        return soap::Value::from_double_array(payloads[shape]);
      },
      options));

  std::vector<soap::RpcCall> calls(kShapes);
  for (std::size_t s = 0; s < kShapes; ++s) {
    calls[s].method = "fetch";
    calls[s].service_namespace = "urn:bsoap-bench";
    calls[s].params.push_back(
        soap::Param{"key", soap::Value::from_int(static_cast<std::int32_t>(s))});
  }

  struct ClientSlot {
    std::unique_ptr<net::Transport> transport;
    std::unique_ptr<core::BsoapClient> client;
  };
  const std::size_t client_count = workers;
  std::vector<ClientSlot> slots(client_count);
  for (ClientSlot& slot : slots) {
    slot.transport = must(net::tcp_connect(server->port()));
    slot.client = std::make_unique<core::BsoapClient>(*slot.transport);
  }

  std::atomic<int> errors{0};
  // Client c starts at shape c, so at any instant the pool is spread across
  // shapes (the contention pattern a shared cache must absorb).
  const auto run_rounds = [&](int rounds) {
    std::vector<std::thread> threads;
    threads.reserve(client_count);
    for (std::size_t c = 0; c < client_count; ++c) {
      threads.emplace_back([&, c] {
        ClientSlot& slot = slots[c];
        for (int i = 0; i < rounds; ++i) {
          const std::size_t shape = (c + static_cast<std::size_t>(i)) % kShapes;
          if (!slot.client->invoke(calls[shape]).ok()) {
            errors.fetch_add(1);
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  };

  // Warmup: every client touches every shape under full concurrency, so
  // first-time builds, contended publishes and clone provisioning all land
  // before the steady-state snapshot.
  run_rounds(kWarmupRounds * static_cast<int>(kShapes));
  const server::ServerStats warm = server->stats();

  const auto timed_start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    run_rounds(kRequestsPerClient);
  }
  const double timed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    timed_start)
          .count();
  if (errors.load() != 0) {
    state.SkipWithError("request failed");
  }
  const server::ServerStats done = server->stats();

  const std::int64_t total_requests = state.iterations() *
                                      static_cast<std::int64_t>(client_count) *
                                      kRequestsPerClient;
  state.SetItemsProcessed(total_requests);
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["shapes"] = static_cast<double>(kShapes);
  state.counters["diff"] = mode != Mode::kFull ? 1 : 0;
  state.counters["shared"] = mode == Mode::kShared ? 1 : 0;
  state.counters["reactor"] = mode == Mode::kReactor ? 1 : 0;
  // Explicit rate for the cross-engine gate in check_match_kinds.py (the
  // JSON reporter records counters, not google-benchmark's derived rates).
  state.counters["req_per_s"] =
      timed_seconds > 0 ? static_cast<double>(total_requests) / timed_seconds
                        : 0;
  state.counters["steady_first_time"] =
      static_cast<double>(done.response_first_time - warm.response_first_time);
  state.counters["retained_bytes"] =
      static_cast<double>(done.response_template_bytes);
  state.counters["invalidated"] =
      static_cast<double>(done.cache_invalidations - warm.cache_invalidations);
  state.counters["cache_clones"] = static_cast<double>(done.cache_clones);
  state.counters["cache_contended"] =
      static_cast<double>(done.cache_contended);
  server->stop();
}

// ---------------------------------------------------------------------------
// Idle-connection axis: req/s for a handful of active clients while a fleet
// of mostly-idle keep-alive connections sits on the server. The blocking
// engine's workers are pinned by whichever idle connections got them (and
// its queue fills with more), so active clients starve as the fleet grows;
// the reactor parks the fleet in epoll and keeps serving. Measured over a
// fixed wall-clock window (a fixed request count would never finish on the
// starved engine).
//
// Both engines run in the SAME benchmark, measured in alternating windows
// within every iteration: the reactor-vs-blocking ratio is what
// check_match_kinds.py gates, and on a busy single-core box two series run
// seconds apart see different machine conditions — interleaving makes the
// ratio drift-immune. The quiescent engine costs nothing meaningful while
// the other is measured (epoll sleeps; blocked workers poll 20 ms slices).

constexpr std::size_t kIdleWorkers = 4;
constexpr int kActiveClients = 4;
constexpr auto kWindow = std::chrono::milliseconds(250);

void bench_idle_pair(benchmark::State& state, std::size_t idle_conns) {
  const std::vector<double> payload =
      soap::random_doubles(response_array_size(), 7);

  const auto start_server = [&](server::IoModel model) {
    server::ServerRuntimeOptions options;
    options.workers = kIdleWorkers;
    options.io_model = model;
    options.max_connections = idle_conns + 64;
    return must(server::ServerRuntime::start(
        [&payload](const soap::RpcCall&) -> Result<soap::Value> {
          return soap::Value::from_double_array(payload);
        },
        options));
  };
  auto blocking_server = start_server(server::IoModel::kBlocking);
  auto reactor_server = start_server(server::IoModel::kReactor);

  // One idle fleet per engine: connect and go silent. On the blocking
  // engine most of these are answered 503 or sit in the accept queue —
  // that is the pathology being measured, not a setup error.
  const auto open_fleet = [&](std::uint16_t port) {
    std::vector<std::unique_ptr<net::Transport>> fleet;
    fleet.reserve(idle_conns);
    for (std::size_t i = 0; i < idle_conns; ++i) {
      Result<std::unique_ptr<net::Transport>> conn = net::tcp_connect(port);
      if (conn.ok()) fleet.push_back(std::move(conn.value()));
    }
    return fleet;
  };
  const auto blocking_fleet = open_fleet(blocking_server->port());
  const auto reactor_fleet = open_fleet(reactor_server->port());

  soap::RpcCall call;
  call.method = "fetch";
  call.service_namespace = "urn:bsoap-bench";
  call.params.push_back(soap::Param{"key", soap::Value::from_int(0)});

  // Runs one fixed window of active clients against `port`; returns
  // completed round trips.
  const auto run_window = [&](std::uint16_t port) {
    std::atomic<long> completed{0};
    const auto deadline = std::chrono::steady_clock::now() + kWindow;
    std::vector<std::thread> threads;
    threads.reserve(kActiveClients);
    for (int c = 0; c < kActiveClients; ++c) {
      threads.emplace_back([&] {
        std::unique_ptr<net::Transport> transport;
        std::unique_ptr<core::BsoapClient> client;
        while (std::chrono::steady_clock::now() < deadline) {
          if (client == nullptr) {
            Result<std::unique_ptr<net::Transport>> conn =
                net::tcp_connect(port);
            if (!conn.ok()) continue;
            transport = std::move(conn.value());
            client = std::make_unique<core::BsoapClient>(*transport);
          }
          if (client->invoke(call).ok()) {
            completed.fetch_add(1);
          } else {
            client.reset();  // rejected/starved: reconnect and keep trying
            transport.reset();
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    return completed.load();
  };

  long blocking_completed = 0;
  long reactor_completed = 0;
  double blocking_seconds = 0;
  double reactor_seconds = 0;
  const auto timed_window = [&](std::uint16_t port, long& completed,
                                double& seconds) {
    const auto begin = std::chrono::steady_clock::now();
    completed += run_window(port);
    seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             begin)
                   .count();
  };
  for (auto _ : state) {
    timed_window(blocking_server->port(), blocking_completed,
                 blocking_seconds);
    timed_window(reactor_server->port(), reactor_completed, reactor_seconds);
  }

  state.SetItemsProcessed(blocking_completed + reactor_completed);
  state.counters["idle_conns"] = static_cast<double>(idle_conns);
  state.counters["req_per_s_blocking"] =
      blocking_seconds > 0
          ? static_cast<double>(blocking_completed) / blocking_seconds
          : 0;
  state.counters["req_per_s_reactor"] =
      reactor_seconds > 0
          ? static_cast<double>(reactor_completed) / reactor_seconds
          : 0;
  const server::ServerStats blocking_stats = blocking_server->stats();
  const server::ServerStats reactor_stats = reactor_server->stats();
  state.counters["held_conns_blocking"] =
      static_cast<double>(blocking_stats.active);
  state.counters["held_conns_reactor"] =
      static_cast<double>(reactor_stats.active);
  state.counters["rejected_blocking"] =
      static_cast<double>(blocking_stats.rejected);
  state.counters["rejected_reactor"] =
      static_cast<double>(reactor_stats.rejected);
  blocking_server->stop();
  reactor_server->stop();
}

void register_bench() {
  for (const Mode mode :
       {Mode::kFull, Mode::kPerWorker, Mode::kShared, Mode::kReactor}) {
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      // Mode before the numeric suffix: the JSON reporter parses the
      // trailing "/N" as the series point, so workers must come last.
      const std::string name = std::string("ServerThroughput/") +
                               mode_name(mode) + "/workers/" +
                               std::to_string(workers);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [workers, mode](benchmark::State& state) {
            bench_point(state, workers, mode);
          })
          ->Iterations(3)
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
  for (const std::size_t idle_conns : {std::size_t{0}, std::size_t{1000}}) {
    const std::string name =
        std::string("ServerIdleConnections/paired/idle/") +
        std::to_string(idle_conns);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [idle_conns](benchmark::State& state) {
          bench_idle_pair(state, idle_conns);
        })
        ->Iterations(4)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
}

}  // namespace

BSOAP_BENCH_MAIN(register_bench)
