// Figure 12: Chunk overlaying performance.
// Sending an array from a single overlaid 32K chunk vs. sending from
// multiple separate chunks all in memory (the 100% value re-serialization
// case with stuffed fields), for doubles and MIOs.
// Paper shape: overlay tracks the 100% value re-serialization line — the
// memory saving is (nearly) free.
#include "bench/bench_common.hpp"
#include "core/client.hpp"
#include "core/overlay.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

core::BsoapClientConfig stuffed_client_config() {
  core::BsoapClientConfig config;
  config.tmpl.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
  return config;
}

void register_figure() {
  register_series("Fig12_Overlay/ChunkOverlay/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::OverlaySender sender(*env.transport,
                                               core::OverlayConfig{});
                    const auto values = soap::random_doubles(n, 1);
                    (void)must(sender.send_double_array(
                        "sendData", "urn:bsoap-bench", "data", values));
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(sender.send_double_array(
                          "sendData", "urn:bsoap-bench", "data", values)));
                    }
                  });

  register_series(
      "Fig12_Overlay/SeparateChunks_Reserialize100pct/Double",
      [](benchmark::State& state, std::size_t n) {
        BenchEnv env;
        core::BsoapClient client(*env.transport, stuffed_client_config());
        auto message = client.bind(
            soap::make_double_array_call(soap::random_doubles(n, 1)));
        (void)must(message->send());
        const auto pool_a = soap::random_doubles(n, 2);
        const auto pool_b = soap::random_doubles(n, 3);
        bool flip = false;
        for (auto _ : state) {
          const auto& pool = flip ? pool_a : pool_b;
          flip = !flip;
          for (std::size_t i = 0; i < n; ++i) {
            message->set_double_element(0, i, pool[i]);
          }
          benchmark::DoNotOptimize(must(message->send()));
        }
      });

  register_series("Fig12_Overlay/ChunkOverlay/MIO",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::OverlaySender sender(*env.transport,
                                               core::OverlayConfig{});
                    const auto values = soap::random_mios(n, 4);
                    (void)must(sender.send_mio_array(
                        "sendData", "urn:bsoap-bench", "data", values));
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(sender.send_mio_array(
                          "sendData", "urn:bsoap-bench", "data", values)));
                    }
                  });

  register_series(
      "Fig12_Overlay/SeparateChunks_Reserialize100pct/MIO",
      [](benchmark::State& state, std::size_t n) {
        BenchEnv env;
        core::BsoapClient client(*env.transport, stuffed_client_config());
        auto message =
            client.bind(soap::make_mio_array_call(soap::random_mios(n, 4)));
        (void)must(message->send());
        const auto pool_a = soap::random_mios(n, 5);
        const auto pool_b = soap::random_mios(n, 6);
        bool flip = false;
        for (auto _ : state) {
          const auto& pool = flip ? pool_a : pool_b;
          flip = !flip;
          for (std::size_t i = 0; i < n; ++i) {
            message->set_mio_element(0, i, pool[i]);
          }
          benchmark::DoNotOptimize(must(message->send()));
        }
      });
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
