// Ablation: DUT table overhead.
//
// The content-match fast path must scan (or short-circuit) the dirty state.
// Measures: the dirty-bit short circuit (BoundMessage clean send, minus
// network: classification only), the comparison-based scan over an unchanged
// call (update_template with zero rewrites), and the comparison scan cost as
// a fraction of full serialization.
#include "bench/bench_common.hpp"
#include "core/diff_serializer.hpp"
#include "core/template_builder.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

void register_figure() {
  register_series("AblationDut/CompareScan_NoChanges/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    core::TemplateConfig config;
                    auto tmpl = core::build_template(call, config);
                    for (auto _ : state) {
                      const core::UpdateResult result =
                          core::update_template(*tmpl, call);
                      benchmark::DoNotOptimize(result.values_rewritten);
                    }
                  });

  register_series("AblationDut/DirtyScan_NoChanges/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    core::TemplateConfig config;
                    auto tmpl = core::build_template(call, config);
                    for (auto _ : state) {
                      const core::UpdateResult result =
                          core::update_dirty_fields(*tmpl, call);
                      benchmark::DoNotOptimize(result.values_rewritten);
                    }
                  });

  register_series("AblationDut/DirtyBitShortCircuit/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    core::TemplateConfig config;
                    auto tmpl = core::build_template(call, config);
                    for (auto _ : state) {
                      // The client's clean-send path: one counter check.
                      benchmark::DoNotOptimize(tmpl->dut().any_dirty());
                    }
                  });

  register_series("AblationDut/FullBuild_Reference/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    core::TemplateConfig config;
                    auto tmpl = core::build_template(call, config);
                    for (auto _ : state) {
                      core::rebuild_template(*tmpl, call);
                      benchmark::DoNotOptimize(tmpl->buffer().total_size());
                    }
                  });
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
