// Ablation: DUT table overhead.
//
// The content-match fast path must scan (or short-circuit) the dirty state.
// Measures: the dirty-bit short circuit (BoundMessage clean send, minus
// network: classification only), the comparison-based scan over an unchanged
// call (update_template with zero rewrites), and the comparison scan cost as
// a fraction of full serialization.
//
// The Scalar-vs-Bulk pairs isolate the array fast path (SoA plane memcmp /
// word-wide dirty-bit scanning + run-based rewrites) from dtoa cost: both
// variants rewrite the identical ~10% of elements with identical
// conversions, so the delta is pure scan + rewrite-cursor overhead.
#include "bench/bench_common.hpp"
#include "core/diff_serializer.hpp"
#include "core/template_builder.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

/// Two calls identical to the template except every 10th element, whose
/// value flips between the A and B pools (same serialized width, so no
/// expansions muddy the comparison).
struct SparseWorkload {
  soap::RpcCall base;
  soap::RpcCall call_a;
  soap::RpcCall call_b;

  explicit SparseWorkload(std::size_t n) {
    constexpr int kChars = 18;
    const auto values = soap::doubles_with_serialized_length(n, kChars, 1);
    const auto pool_a = soap::doubles_with_serialized_length(n, kChars, 2);
    const auto pool_b = soap::doubles_with_serialized_length(n, kChars, 3);
    auto a = values;
    auto b = values;
    for (std::size_t i = 0; i < n; i += 10) {
      a[i] = pool_a[i];
      b[i] = pool_b[i];
    }
    base = soap::make_double_array_call(values);
    call_a = soap::make_double_array_call(std::move(a));
    call_b = soap::make_double_array_call(std::move(b));
  }
};

void register_scan_ablation(bool bulk, const std::string& variant) {
  register_series(
      "AblationDut/CompareUpdate_" + variant + "_10pctDirty/Double",
      [bulk](benchmark::State& state, std::size_t n) {
        const SparseWorkload w(n);
        core::TemplateConfig config;
        config.bulk.enable = bulk;
        auto tmpl = core::build_template(w.base, config);
        bool flip = false;
        std::uint64_t runs = 0;
        std::int64_t scan_ns = 0;
        std::int64_t rewrite_ns = 0;
        for (auto _ : state) {
          flip = !flip;
          const core::UpdateResult result =
              core::update_template(*tmpl, flip ? w.call_a : w.call_b);
          runs += result.bulk_runs;
          scan_ns += result.scan_ns;
          rewrite_ns += result.rewrite_ns;
          benchmark::DoNotOptimize(result.values_rewritten);
        }
        state.counters["bulk_runs"] = static_cast<double>(runs);
        state.counters["scan_ns"] = static_cast<double>(scan_ns);
        state.counters["rewrite_ns"] = static_cast<double>(rewrite_ns);
      });

  register_series(
      "AblationDut/DirtyUpdate_" + variant + "_10pctDirty/Double",
      [bulk](benchmark::State& state, std::size_t n) {
        const SparseWorkload w(n);
        core::TemplateConfig config;
        config.bulk.enable = bulk;
        auto tmpl = core::build_template(w.base, config);
        bool flip = false;
        for (auto _ : state) {
          flip = !flip;
          for (std::size_t i = 0; i < n; i += 10) {
            tmpl->dut().mark_dirty(i);
          }
          const core::UpdateResult result =
              core::update_dirty_fields(*tmpl, flip ? w.call_a : w.call_b);
          benchmark::DoNotOptimize(result.values_rewritten);
        }
      });
}

void register_figure() {
  register_scan_ablation(/*bulk=*/true, "Bulk");
  register_scan_ablation(/*bulk=*/false, "Scalar");
  register_series("AblationDut/CompareScan_NoChanges/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    core::TemplateConfig config;
                    auto tmpl = core::build_template(call, config);
                    for (auto _ : state) {
                      const core::UpdateResult result =
                          core::update_template(*tmpl, call);
                      benchmark::DoNotOptimize(result.values_rewritten);
                    }
                  });

  register_series("AblationDut/DirtyScan_NoChanges/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    core::TemplateConfig config;
                    auto tmpl = core::build_template(call, config);
                    for (auto _ : state) {
                      const core::UpdateResult result =
                          core::update_dirty_fields(*tmpl, call);
                      benchmark::DoNotOptimize(result.values_rewritten);
                    }
                  });

  register_series("AblationDut/DirtyBitShortCircuit/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    core::TemplateConfig config;
                    auto tmpl = core::build_template(call, config);
                    for (auto _ : state) {
                      // The client's clean-send path: one counter check.
                      benchmark::DoNotOptimize(tmpl->dut().any_dirty());
                    }
                  });

  register_series("AblationDut/FullBuild_Reference/Double",
                  [](benchmark::State& state, std::size_t n) {
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    core::TemplateConfig config;
                    auto tmpl = core::build_template(call, config);
                    for (auto _ : state) {
                      core::rebuild_template(*tmpl, call);
                      benchmark::DoNotOptimize(tmpl->buffer().total_size());
                    }
                  });
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
