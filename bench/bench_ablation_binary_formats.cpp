// Ablation: binary formats vs ASCII XML vs differential serialization
// (paper Section 5 related work: base64/DIME "do achieve performance gains,
// but reduce the simplicity and universality of SOAP"), plus gzip
// compression (gSOAP's transport feature, complementary to differential
// serialization).
//
// Series (double arrays, serialize + send to the drain server):
//   AsciiXml           — conventional full serialization (the baseline)
//   AsciiXml_Gzip      — full serialization + gzip, compressed bytes sent
//   Base64Xml          — little-endian doubles base64-packed into one element
//   Dime               — small XML envelope + raw binary DIME attachment
//   Differential_MCM   — resend of the saved ASCII template (for reference)
#include "bench/bench_common.hpp"
#include "buffer/sinks.hpp"
#include "compress/deflate.hpp"
#include "core/client.hpp"
#include "soap/base64.hpp"
#include "soap/dime.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

std::string xml_envelope(const std::vector<double>& values) {
  buffer::StringSink sink;
  soap::write_rpc_envelope(sink, soap::make_double_array_call(values));
  return sink.take();
}

std::string base64_envelope(const std::vector<double>& values) {
  // Schema replaces the item list with one base64 element (the binary-SOAP
  // proposal's shape).
  std::string out =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?><SOAP-ENV:Envelope"
      " xmlns:SOAP-ENV=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<SOAP-ENV:Body><ns1:sendData xmlns:ns1=\"urn:bsoap-bench\">"
      "<data xsi:type=\"SOAP-ENC:base64\" count=\"";
  out += std::to_string(values.size());
  out += "\">";
  out += soap::base64_pack_doubles(values);
  out += "</data></ns1:sendData></SOAP-ENV:Body></SOAP-ENV:Envelope>";
  return out;
}

Status send_body(net::Transport& transport, std::string_view body,
                 const char* content_type) {
  http::HttpRequest head;
  head.headers.push_back(http::Header{"Host", "localhost"});
  head.headers.push_back(http::Header{"Content-Type", content_type});
  head.headers.push_back(
      http::Header{"Content-Length", std::to_string(body.size())});
  const std::string head_text = http::serialize_request_head(head);
  const net::ConstSlice wire[] = {
      net::ConstSlice{head_text.data(), head_text.size()},
      net::ConstSlice{body.data(), body.size()}};
  return transport.send_slices(wire);
}

void register_figure() {
  register_series("AblationBinary/AsciiXml/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    const auto values = soap::random_doubles(n, 1);
                    must_ok(send_body(*env.transport, xml_envelope(values),
                                      "text/xml"));
                    std::string body;
                    for (auto _ : state) {
                      body = xml_envelope(values);
                      must_ok(send_body(*env.transport, body, "text/xml"));
                    }
                    state.counters["msg_bytes"] =
                        static_cast<double>(body.size());
                  });

  register_series(
      "AblationBinary/AsciiXml_Gzip/Double",
      [](benchmark::State& state, std::size_t n) {
        BenchEnv env;
        const auto values = soap::random_doubles(n, 1);
        must_ok(send_body(*env.transport, "warm", "text/xml"));
        std::string compressed;
        for (auto _ : state) {
          compressed = compress::gzip_compress(xml_envelope(values));
          must_ok(send_body(*env.transport, compressed, "text/xml"));
        }
        state.counters["msg_bytes"] = static_cast<double>(compressed.size());
      });

  register_series("AblationBinary/Base64Xml/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    const auto values = soap::random_doubles(n, 1);
                    must_ok(send_body(*env.transport, "warm", "text/xml"));
                    std::string body;
                    for (auto _ : state) {
                      body = base64_envelope(values);
                      must_ok(send_body(*env.transport, body, "text/xml"));
                    }
                    state.counters["msg_bytes"] =
                        static_cast<double>(body.size());
                  });

  register_series(
      "AblationBinary/Dime/Double",
      [](benchmark::State& state, std::size_t n) {
        BenchEnv env;
        const auto values = soap::random_doubles(n, 1);
        must_ok(send_body(*env.transport, "warm", "application/dime"));
        const std::string envelope =
            "<?xml version=\"1.0\"?><SOAP-ENV:Envelope><SOAP-ENV:Body>"
            "<ns1:sendData xmlns:ns1=\"urn:bsoap-bench\">"
            "<data href=\"cid:array-1\"/>"
            "</ns1:sendData></SOAP-ENV:Body></SOAP-ENV:Envelope>";
        std::string body;
        for (auto _ : state) {
          soap::DimeRecord attachment;
          attachment.id = "cid:array-1";
          attachment.type = "application/octet-stream";
          attachment.data.assign(
              reinterpret_cast<const char*>(values.data()),
              values.size() * sizeof(double));
          body = soap::make_dime_message(envelope, {attachment});
          must_ok(send_body(*env.transport, body, "application/dime"));
        }
        state.counters["msg_bytes"] = static_cast<double>(body.size());
      });

  register_series("AblationBinary/Differential_MCM/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::BsoapClient client(*env.transport);
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::random_doubles(n, 1));
                    (void)must(client.send_call(call));
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(client.send_call(call)));
                    }
                  });
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
