// Figure 3: Message Content Matches, arrays of integers.
// Paper shape: content match at least ~4x faster than full serialization for
// large arrays (integers convert more cheaply than doubles, so the ratio is
// smaller than Figure 2's).
#include "bench/mcm_series.hpp"

namespace {
void register_figure() {
  bsoap::bench::register_mcm_figure("Fig03_MCM", bsoap::bench::ElementKind::kInt,
                                    /*with_xsoap=*/false);
}
}  // namespace

BSOAP_BENCH_MAIN(register_figure)
