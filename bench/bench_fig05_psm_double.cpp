// Figure 5: Perfect Structural Matches, arrays of doubles.
// Same series as Figure 4 for plain double arrays.
#include "bench/psm_series.hpp"

namespace {
void register_figure() {
  bsoap::bench::register_psm_double_series("Fig05_PSM");
}
}  // namespace

BSOAP_BENCH_MAIN(register_figure)
