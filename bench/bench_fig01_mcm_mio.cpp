// Figure 1: Message Content Matches, arrays of MIOs.
// Series: gSOAP, bSOAP Full Serialization, bSOAP Message Content Match.
// Paper shape: content match ~7x faster than full serialization for large
// arrays; bSOAP full ~ gSOAP.
#include "bench/mcm_series.hpp"

namespace {
void register_figure() {
  bsoap::bench::register_mcm_figure("Fig01_MCM", bsoap::bench::ElementKind::kMio,
                                    /*with_xsoap=*/false);
}
}  // namespace

BSOAP_BENCH_MAIN(register_figure)
