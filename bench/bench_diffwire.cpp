// Diff-wire protocol on the wire: actual bytes sent per request, patch vs
// full-body, as the fraction of dirty values grows — plus a NACK-storm
// series proving the fallback path never fails a request.
//
// Each point runs a real client/server round trip (ServerRuntime with
// diff-wire enabled, pooled BsoapClient) with every dialed connection
// wrapped in a byte-counting transport, so wire_bytes_per_req is the true
// on-wire cost including HTTP heads — the number the paper's Gigabit
// Ethernet motivation cares about. Series (the trailing /N is dirty values
// per mille of the array):
//
//   DiffWire/full/N   — diff-wire off: every send is the full envelope.
//   DiffWire/patch/N  — diff-wire on: steady state sends patch frames.
//   DiffWire/nackstorm/N — diff-wire on, but the server's replica store is
//     cleared every 16 requests. Each clear NACKs the next patch; the
//     client falls back to a full send inside the same invoke and re-pins.
//
// Both series mutate the same value positions (same RNG seed per point), so
// the patch/full byte ratio isolates the protocol. check_match_kinds.py
// gates: at 1 per mille dirty, patch wire bytes <= 0.1x full wire bytes;
// every DiffWire entry reports failed == 0 (including the NACK storm).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "core/client.hpp"
#include "net/tcp.hpp"
#include "server/server_runtime.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

/// Request payload size. BSOAP_BENCH_MAX_N caps it for quick runs, but with
/// a floor of 256: the 0.1x patch/full gate compares whole requests, and on
/// a tiny body the fixed HTTP head would dominate both sides.
std::size_t payload_size() {
  std::size_t n = 1000;
  if (const char* cap = std::getenv("BSOAP_BENCH_MAX_N")) {
    const auto max_n = static_cast<std::size_t>(std::atoll(cap));
    if (max_n >= 1 && max_n < n) n = std::max<std::size_t>(max_n, 256);
  }
  return n;
}

constexpr int kRequestsPerIter = 64;
constexpr int kClearEvery = 16;  ///< nackstorm: replica wipe cadence

enum class Mode { kFull, kPatch, kNackStorm };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kFull: return "full";
    case Mode::kPatch: return "patch";
    case Mode::kNackStorm: return "nackstorm";
  }
  return "?";
}

/// Counts every byte the client puts on the wire (heads + bodies), pass
///-through otherwise.
class CountingTransport final : public net::Transport {
 public:
  CountingTransport(std::unique_ptr<net::Transport> inner,
                    std::atomic<std::uint64_t>* bytes)
      : inner_(std::move(inner)), bytes_(bytes) {}

  Status send(const char* data, std::size_t n) override {
    bytes_->fetch_add(n, std::memory_order_relaxed);
    return inner_->send(data, n);
  }
  Status send_slices(std::span<const net::ConstSlice> slices) override {
    std::uint64_t total = 0;
    for (const net::ConstSlice& slice : slices) total += slice.len;
    bytes_->fetch_add(total, std::memory_order_relaxed);
    return inner_->send_slices(slices);
  }
  Result<std::size_t> recv(char* out, std::size_t n) override {
    return inner_->recv(out, n);
  }
  void shutdown_send() override { inner_->shutdown_send(); }
  void shutdown_both() override { inner_->shutdown_both(); }

 private:
  std::unique_ptr<net::Transport> inner_;
  std::atomic<std::uint64_t>* bytes_;
};

Result<soap::Value> sum_handler(const soap::RpcCall& call) {
  double total = 0;
  for (const double v : call.params[0].value.doubles()) total += v;
  return soap::Value::from_double(total);
}

void bench_point(benchmark::State& state, int permille, Mode mode) {
  server::ServerRuntimeOptions options;
  options.workers = 2;
  auto server = must(server::ServerRuntime::start(sum_handler, options));

  std::atomic<std::uint64_t> sent_bytes{0};
  const std::uint16_t port = server->port();
  net::Dialer dial = [port,
                      &sent_bytes]() -> Result<std::unique_ptr<net::Transport>> {
    Result<std::unique_ptr<net::Transport>> conn = net::tcp_connect(port);
    if (!conn.ok()) return conn.error();
    return std::unique_ptr<net::Transport>(std::make_unique<CountingTransport>(
        std::move(conn.value()), &sent_bytes));
  };

  core::BsoapClientConfig config;
  // Stuffed numeric fields keep value rewrites in place — the perfect
  // structural matches the patch path needs (same config the server uses
  // for its response templates).
  config.tmpl.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
  config.tmpl.stuffing.stuff_on_expand = true;
  config.diffwire = mode != Mode::kFull;
  core::BsoapClient client(dial, config);

  const std::size_t n = payload_size();
  const std::size_t dirty = std::max<std::size_t>(
      1, n * static_cast<std::size_t>(permille) / 1000);
  std::vector<double> values = soap::doubles_with_serialized_length(n, 17, 7);
  // Seeded by permille only: full and patch series mutate identical
  // positions with identical replacement values.
  bsoap::Rng rng(static_cast<std::uint64_t>(permille) * 7919 + 17);

  // Warmup: first send builds the template and (patch modes) pins + acks.
  must(client.invoke(soap::make_double_array_call(values)));
  sent_bytes.store(0, std::memory_order_relaxed);

  std::uint64_t requests = 0;
  std::uint64_t failed = 0;
  for (auto _ : state) {
    for (int i = 0; i < kRequestsPerIter; ++i) {
      for (std::size_t d = 0; d < dirty; ++d) {
        values[rng.next_below(n)] = soap::double_with_serialized_length(rng, 17);
      }
      if (mode == Mode::kNackStorm && i % kClearEvery == 0) {
        server->replicas()->clear();
      }
      if (!client.invoke(soap::make_double_array_call(values)).ok()) ++failed;
      ++requests;
    }
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dirty"] = static_cast<double>(dirty);
  state.counters["failed"] = static_cast<double>(failed);
  state.counters["wire_bytes_per_req"] =
      requests > 0 ? static_cast<double>(sent_bytes.load()) /
                         static_cast<double>(requests)
                   : 0;
  if (const diffwire::ClientDiffStats* ds = client.diffwire_stats()) {
    state.counters["patch_sends"] = static_cast<double>(ds->patch_sends);
    state.counters["patch_replays"] = static_cast<double>(ds->patch_replays);
    state.counters["patch_nacks"] = static_cast<double>(ds->patch_nacks);
    state.counters["fallback_full"] =
        static_cast<double>(ds->fallback_full_sends);
    state.counters["bytes_saved"] = static_cast<double>(ds->bytes_saved);
  }
  server->stop();
}

void register_bench() {
  for (const Mode mode : {Mode::kFull, Mode::kPatch}) {
    for (const int permille : {1, 10, 100}) {
      // Mode before the numeric suffix: the JSON reporter parses the
      // trailing "/N" as the series point.
      const std::string name = std::string("DiffWire/") + mode_name(mode) +
                               "/" + std::to_string(permille);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [permille, mode](benchmark::State& state) {
            bench_point(state, permille, mode);
          })
          ->Iterations(2)
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
  benchmark::RegisterBenchmark(
      "DiffWire/nackstorm/10",
      [](benchmark::State& state) { bench_point(state, 10, Mode::kNackStorm); })
      ->Iterations(2)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

}  // namespace

BSOAP_BENCH_MAIN(register_bench)
