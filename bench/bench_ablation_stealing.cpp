// Ablation: stealing vs shifting (paper Section 3.2, companion paper [4]).
//
// A sparse set of fields grows inside a message whose neighbours carry
// padding. With stealing enabled the growth is absorbed by moving a few
// bytes from the neighbour's padding; disabled, every growth shifts the
// chunk tail. Measures both, plus the padding-free worst case where stealing
// cannot help and falls back to shifting.
#include "bench/bench_common.hpp"
#include "common/timing.hpp"
#include "core/client.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

void register_growth(const std::string& name, bool stealing,
                     int initial_chars) {
  register_series(
      name,
      [stealing, initial_chars](benchmark::State& state, std::size_t n) {
        BenchEnv env;
        core::BsoapClientConfig config;
        // Fixed 18-char fields leave padding when values are small.
        config.tmpl.stuffing.mode = core::StuffingPolicy::Mode::kFixed;
        config.tmpl.stuffing.fixed_width = 18;
        config.tmpl.enable_stealing = stealing;
        core::BsoapClient client(*env.transport, config);

        const auto small =
            soap::doubles_with_serialized_length(n, static_cast<int>(initial_chars), 1);
        const auto big = soap::doubles_with_serialized_length(n, 24, 2);
        const soap::RpcCall base = soap::make_double_array_call(small);
        for (auto _ : state) {
          auto message = client.bind(base);  // untimed rebuild
          StopWatch watch;
          // Grow every 8th value to 24 chars: neighbours keep their padding
          // and can donate it.
          for (std::size_t i = 0; i < n; i += 8) {
            message->set_double_element(0, i, big[i]);
          }
          (void)must(message->send());
          state.SetIterationTime(static_cast<double>(watch.elapsed_ns()) / 1e9);
        }
      },
      /*manual_time=*/true);
}

void register_figure() {
  register_growth("AblationStealing/StealingEnabled/Double", true, 1);
  register_growth("AblationStealing/StealingDisabled/Double", false, 1);
  // 18-char initial values: fields are full, stealing finds no padding and
  // falls back to shifting — measures the scan's overhead.
  register_growth("AblationStealing/NoPaddingAvailable/Double", true, 18);
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
