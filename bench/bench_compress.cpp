// Wire compression on the wire: actual bytes per request with and without
// the template-preset DEFLATE layer, as the fraction of dirty values grows.
//
// Each point runs a real client/server round trip (ServerRuntime, pooled
// BsoapClient) with every dialed connection wrapped in a byte-counting
// transport, and a SendObserver recording the payload bytes and compression
// CPU of every send. Series (the trailing /N is dirty values per mille):
//
//   WireCompress/fullid/N      — structural-update workload (each request
//     grows one value past its exact-width field, forcing a full re-offer)
//     with identity coding: every send is the full envelope.
//   WireCompress/fullpreset/N  — same workload, deflate-preset coding: each
//     re-offer compresses against the previous pin generation's dictionary,
//     which the body is near-identical to. This is the MCM/re-offer series
//     the acceptance gate measures.
//   WireCompress/patchid/N     — stuffed workload (same-width rewrites stay
//     in place): steady state sends uncompressed patch frames.
//   WireCompress/patchpreset/N — same workload, preset coding: patch frames
//     compress against the dictionary, falling back to identity per message
//     when compression does not shrink the frame.
//
// Identity and preset series mutate the same positions with the same values
// (same RNG seed per point), so the byte ratios isolate the coding layer.
// check_match_kinds.py gates: fullpreset wire bytes <= 0.5x fullid at every
// dirty rate (the >= 2x reduction the preset layer exists for), patchpreset
// payload bytes <= 1.0x patchid at every dirty rate (per-message fallback
// guarantees a coded frame never costs more than the raw frame), and every
// WireCompress entry reports failed == 0.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "core/client.hpp"
#include "http/content_coding.hpp"
#include "net/tcp.hpp"
#include "server/server_runtime.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

/// Request payload size. BSOAP_BENCH_MAX_N caps it for quick runs, but with
/// a floor of 256: the cross-series byte gates compare whole requests, and
/// on a tiny body the fixed HTTP head would dominate both sides. The floor
/// also keeps the structural series from wrapping (each request grows a
/// distinct value; a re-grown value would stay in place and patch instead).
std::size_t payload_size() {
  std::size_t n = 1000;
  if (const char* cap = std::getenv("BSOAP_BENCH_MAX_N")) {
    const auto max_n = static_cast<std::size_t>(std::atoll(cap));
    if (max_n >= 1 && max_n < n) n = std::max<std::size_t>(max_n, 256);
  }
  return n;
}

constexpr int kRequestsPerIter = 48;

enum class Mode { kFullIdentity, kFullPreset, kPatchIdentity, kPatchPreset };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kFullIdentity: return "fullid";
    case Mode::kFullPreset: return "fullpreset";
    case Mode::kPatchIdentity: return "patchid";
    case Mode::kPatchPreset: return "patchpreset";
  }
  return "?";
}

bool is_patch_mode(Mode mode) {
  return mode == Mode::kPatchIdentity || mode == Mode::kPatchPreset;
}

bool is_preset_mode(Mode mode) {
  return mode == Mode::kFullPreset || mode == Mode::kPatchPreset;
}

/// Counts every byte the client puts on the wire (heads + bodies), pass
///-through otherwise.
class CountingTransport final : public net::Transport {
 public:
  CountingTransport(std::unique_ptr<net::Transport> inner,
                    std::atomic<std::uint64_t>* bytes)
      : inner_(std::move(inner)), bytes_(bytes) {}

  Status send(const char* data, std::size_t n) override {
    bytes_->fetch_add(n, std::memory_order_relaxed);
    return inner_->send(data, n);
  }
  Status send_slices(std::span<const net::ConstSlice> slices) override {
    std::uint64_t total = 0;
    for (const net::ConstSlice& slice : slices) total += slice.len;
    bytes_->fetch_add(total, std::memory_order_relaxed);
    return inner_->send_slices(slices);
  }
  Result<std::size_t> recv(char* out, std::size_t n) override {
    return inner_->recv(out, n);
  }
  void shutdown_send() override { inner_->shutdown_send(); }
  void shutdown_both() override { inner_->shutdown_both(); }

 private:
  std::unique_ptr<net::Transport> inner_;
  std::atomic<std::uint64_t>* bytes_;
};

/// Records the per-send payload bytes (the coded size when a send went out
/// compressed) and the compression CPU — the wire-bytes x CPU trade the
/// JSON counters expose per series.
class CodingObserver final : public core::SendObserver {
 public:
  void on_stage(core::SendStage, std::int64_t, std::size_t) override {}
  void on_send(const core::SendReport& report) override {
    payload_bytes += report.envelope_bytes;
    coding_ns += report.coding_ns;
    bytes_saved += report.coding_bytes_saved;
    if (report.coding != http::ContentCoding::kIdentity) ++compressed_sends;
  }

  void reset() {
    payload_bytes = 0;
    coding_ns = 0;
    bytes_saved = 0;
    compressed_sends = 0;
  }

  std::uint64_t payload_bytes = 0;
  std::int64_t coding_ns = 0;
  std::uint64_t bytes_saved = 0;
  std::uint64_t compressed_sends = 0;
};

Result<soap::Value> sum_handler(const soap::RpcCall& call) {
  double total = 0;
  for (const double v : call.params[0].value.doubles()) total += v;
  return soap::Value::from_double(total);
}

void bench_point(benchmark::State& state, int permille, Mode mode) {
  server::ServerRuntimeOptions options;
  options.workers = 2;
  auto server = must(server::ServerRuntime::start(sum_handler, options));

  std::atomic<std::uint64_t> sent_bytes{0};
  const std::uint16_t port = server->port();
  net::Dialer dial = [port,
                      &sent_bytes]() -> Result<std::unique_ptr<net::Transport>> {
    Result<std::unique_ptr<net::Transport>> conn = net::tcp_connect(port);
    if (!conn.ok()) return conn.error();
    return std::unique_ptr<net::Transport>(std::make_unique<CountingTransport>(
        std::move(conn.value()), &sent_bytes));
  };

  core::BsoapClientConfig config;
  if (is_patch_mode(mode)) {
    // Stuffed numeric fields keep value rewrites in place — the structural
    // matches the patch path needs. Full modes keep exact stuffing so the
    // growth workload forces re-offers.
    config.tmpl.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
    config.tmpl.stuffing.stuff_on_expand = true;
  }
  config.with_diffwire(true);
  if (is_preset_mode(mode)) {
    config.with_compression(http::ContentCoding::kDeflatePreset,
                            /*min_body_bytes=*/64);
  }
  core::BsoapClient client(dial, config);
  CodingObserver observer;
  client.pipeline().set_observer(&observer);

  const std::size_t n = payload_size();
  const std::size_t dirty = std::max<std::size_t>(
      1, n * static_cast<std::size_t>(permille) / 1000);
  std::vector<double> values = soap::doubles_with_serialized_length(n, 17, 7);
  // Seeded by permille only: identity and preset series mutate identical
  // positions with identical replacement values.
  bsoap::Rng rng(static_cast<std::uint64_t>(permille) * 6151 + 29);

  // Warmup: first send builds the template, pins, and acks (preset modes
  // also ack the coding and capture the pin generation's dictionary).
  must(client.invoke(soap::make_double_array_call(values)));
  sent_bytes.store(0, std::memory_order_relaxed);
  observer.reset();

  std::uint64_t requests = 0;
  std::uint64_t failed = 0;
  std::size_t grow_index = 0;
  for (auto _ : state) {
    for (int i = 0; i < kRequestsPerIter; ++i) {
      for (std::size_t d = 0; d < dirty; ++d) {
        values[rng.next_below(n)] = soap::double_with_serialized_length(rng, 17);
      }
      if (!is_patch_mode(mode)) {
        // Grow a fresh value past its exact-width field: every request is a
        // structural update, so every send is a full re-offer.
        values[grow_index++ % n] = soap::double_with_serialized_length(rng, 23);
      }
      if (!client.invoke(soap::make_double_array_call(values)).ok()) ++failed;
      ++requests;
    }
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dirty"] = static_cast<double>(dirty);
  state.counters["failed"] = static_cast<double>(failed);
  state.counters["wire_bytes_per_req"] =
      requests > 0 ? static_cast<double>(sent_bytes.load()) /
                         static_cast<double>(requests)
                   : 0;
  state.counters["payload_bytes_per_req"] =
      requests > 0 ? static_cast<double>(observer.payload_bytes) /
                         static_cast<double>(requests)
                   : 0;
  state.counters["coding_cpu_ns_per_req"] =
      requests > 0 ? static_cast<double>(observer.coding_ns) /
                         static_cast<double>(requests)
                   : 0;
  state.counters["compressed_sends"] =
      static_cast<double>(observer.compressed_sends);
  state.counters["coding_bytes_saved"] =
      static_cast<double>(observer.bytes_saved);
  if (const diffwire::ClientDiffStats* ds = client.diffwire_stats()) {
    state.counters["offers_sent"] = static_cast<double>(ds->offers_sent);
    state.counters["patch_sends"] = static_cast<double>(ds->patch_sends);
    state.counters["patch_nacks"] = static_cast<double>(ds->patch_nacks);
  }
  server->stop();
}

void register_bench() {
  for (const Mode mode : {Mode::kFullIdentity, Mode::kFullPreset,
                          Mode::kPatchIdentity, Mode::kPatchPreset}) {
    for (const int permille : {1, 10, 100}) {
      // Mode before the numeric suffix: the JSON reporter parses the
      // trailing "/N" as the series point.
      const std::string name = std::string("WireCompress/") +
                               mode_name(mode) + "/" +
                               std::to_string(permille);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [permille, mode](benchmark::State& state) {
            bench_point(state, permille, mode);
          })
          ->Iterations(2)
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
}

}  // namespace

BSOAP_BENCH_MAIN(register_bench)
