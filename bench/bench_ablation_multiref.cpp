// Ablation: multi-ref accessors (SOAP 1.1 Section 5; paper related work).
//
// A call whose parameters repeat the same struct value serializes it once
// under multi-ref encoding and references it elsewhere. Compares plain vs
// multi-ref serialization cost and message size as the number of repeated
// parameters grows (the array-size axis repurposed as the repeat count).
#include "bench/bench_common.hpp"
#include "buffer/sinks.hpp"
#include "soap/envelope_writer.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

soap::RpcCall repeated_struct_call(std::size_t repeats) {
  soap::Value shared = soap::Value::make_struct();
  shared.add_member("host", soap::Value::from_string(
                                "compute-node-17.grid.binghamton.edu"));
  shared.add_member("cpus", soap::Value::from_int(8));
  shared.add_member("memory", soap::Value::from_int(4096));
  shared.add_member(
      "annotation",
      soap::Value::from_string("shared resource descriptor, repeated in "
                               "every parameter of the call"));
  soap::RpcCall call;
  call.method = "registerResources";
  call.service_namespace = "urn:bsoap-bench";
  for (std::size_t i = 0; i < repeats; ++i) {
    call.params.push_back(soap::Param{"res" + std::to_string(i), shared});
  }
  return call;
}

void register_figure() {
  // Repurpose the size axis as a repeat count (capped: a call with 100K
  // identical params is not meaningful).
  for (const std::size_t repeats : {2, 8, 32, 128, 512}) {
    benchmark::RegisterBenchmark(
        ("AblationMultiRef/Plain/repeats:" + std::to_string(repeats)).c_str(),
        [repeats](benchmark::State& state) {
          const soap::RpcCall call = repeated_struct_call(repeats);
          buffer::StringSink sink;
          for (auto _ : state) {
            sink.clear();
            soap::write_rpc_envelope(sink, call);
            benchmark::DoNotOptimize(sink.size());
          }
          state.counters["msg_bytes"] = static_cast<double>(sink.size());
        })
        ->Iterations(200)
        ->Unit(benchmark::kMillisecond);

    benchmark::RegisterBenchmark(
        ("AblationMultiRef/MultiRef/repeats:" + std::to_string(repeats))
            .c_str(),
        [repeats](benchmark::State& state) {
          const soap::RpcCall call = repeated_struct_call(repeats);
          buffer::StringSink sink;
          for (auto _ : state) {
            sink.clear();
            soap::write_rpc_envelope_multiref(sink, call);
            benchmark::DoNotOptimize(sink.size());
          }
          state.counters["msg_bytes"] = static_cast<double>(sink.size());
        })
        ->Iterations(200)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

BSOAP_BENCH_MAIN(register_figure)
