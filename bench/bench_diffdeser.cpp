// Differential deserialization end to end: the server's receive-side parse
// cost per request, fused ReplicaStore + ParsedReplica path vs the
// always-full-parse baseline, as the fraction of dirty values grows.
//
// Each point runs real client/server round trips (ServerRuntime, pooled
// BsoapClient speaking the diff-wire patch protocol) with a
// RecvStageTimings observer on the server, so parse_ns_per_req is the
// measured receive parse stage — full parse, region fast parse, or the
// memory read of a content hit — not a microbenchmark of the deserializer
// in isolation. Every mode sends IDENTICAL wire traffic (patch frames);
// only the server-side parse path differs, so the ratio isolates
// differential deserialization. Series (trailing /N is dirty values per
// mille of the array):
//
//   DiffDeser/fullparse/N — diff_deserialize off: every reconstructed body
//     is parsed from scratch (the oracle baseline).
//   DiffDeser/fastparse/N — fused path: dirty runs re-parse only the
//     leaves they touch.
//   DiffDeser/replay/0    — unchanged resends cross as header-only replay
//     frames; the cached call is served with zero parse work.
//   DiffDeser/reactor_fullparse/10, DiffDeser/reactor_fastparse/10 — the
//     same 1%-dirty comparison on the epoll engine.
//
// check_match_kinds.py gates: at <= 1% dirty the fast-parse series' parse
// stage must be >= 5x faster than full parse (both engines), clean
// fast-parse series must report zero demotions, the replay series must
// serve from the cache alone (content hits, no fast/extra full parses),
// and every DiffDeser entry must report failed == 0.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "core/client.hpp"
#include "net/tcp.hpp"
#include "server/recv_observer.hpp"
#include "server/server_runtime.hpp"
#include "soap/workload.hpp"

namespace {

using namespace bsoap;
using namespace bsoap::bench;

/// Request payload size. BSOAP_BENCH_MAX_N caps it for quick runs, with a
/// floor of 256 so the 5x parse-ratio gate compares real parse work rather
/// than fixed per-request overhead.
std::size_t payload_size() {
  std::size_t n = 1000;
  if (const char* cap = std::getenv("BSOAP_BENCH_MAX_N")) {
    const auto max_n = static_cast<std::size_t>(std::atoll(cap));
    if (max_n >= 1 && max_n < n) n = std::max<std::size_t>(max_n, 256);
  }
  return n;
}

constexpr int kRequestsPerIter = 64;

enum class Mode { kFullParse, kFastParse, kReplay };

Result<soap::Value> sum_handler(const soap::RpcCall& call) {
  double total = 0;
  for (const double v : call.params[0].value.doubles()) total += v;
  return soap::Value::from_double(total);
}

void bench_point(benchmark::State& state, int permille, Mode mode,
                 server::IoModel io_model) {
  server::RecvStageTimings timings;
  server::ServerRuntimeOptions options;
  options.workers = 2;
  options.io_model = io_model;
  options.diff_deserialize = mode != Mode::kFullParse;
  options.recv_observer = &timings;
  auto server = must(server::ServerRuntime::start(sum_handler, options));

  const std::uint16_t port = server->port();
  net::Dialer dial = [port] { return net::tcp_connect(port); };
  core::BsoapClientConfig config;
  // Stuffed numeric fields keep value rewrites in place, so every mutated
  // resend is a perfect structural match and crosses as a patch frame —
  // identical wire traffic for every mode.
  config.tmpl.stuffing.mode = core::StuffingPolicy::Mode::kTypeMax;
  config.tmpl.stuffing.stuff_on_expand = true;
  config.diffwire = true;
  core::BsoapClient client(dial, config);

  const std::size_t n = payload_size();
  const std::size_t dirty =
      mode == Mode::kReplay
          ? 0
          : std::max<std::size_t>(
                1, n * static_cast<std::size_t>(permille) / 1000);
  std::vector<double> values = soap::doubles_with_serialized_length(n, 17, 7);
  // Seeded by permille only: fullparse and fastparse mutate identical
  // positions with identical replacement values.
  bsoap::Rng rng(static_cast<std::uint64_t>(permille) * 6271 + 29);

  // Warmup: builds the template, pins the replica, and (fused modes)
  // primes the cached parse. Stage timings restart at zero after it.
  must(client.invoke(soap::make_double_array_call(values)));
  timings.reset();

  std::uint64_t requests = 0;
  std::uint64_t failed = 0;
  for (auto _ : state) {
    for (int i = 0; i < kRequestsPerIter; ++i) {
      for (std::size_t d = 0; d < dirty; ++d) {
        values[rng.next_below(n)] =
            soap::double_with_serialized_length(rng, 17);
      }
      if (!client.invoke(soap::make_double_array_call(values)).ok()) ++failed;
      ++requests;
    }
  }

  const server::RecvStageTimings::Snapshot snap = timings.snapshot();
  const server::ServerStats stats = server->stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
  state.counters["n"] = static_cast<double>(n);
  state.counters["dirty"] = static_cast<double>(dirty);
  state.counters["failed"] = static_cast<double>(failed);
  state.counters["parse_ns_per_req"] =
      requests > 0
          ? static_cast<double>(snap.parse.ns) / static_cast<double>(requests)
          : 0;
  state.counters["patch_apply_ns_per_req"] =
      requests > 0 ? static_cast<double>(snap.patch_apply.ns) /
                         static_cast<double>(requests)
                   : 0;
  // Whole-server counters (the warmup offer contributes one full parse).
  state.counters["content_hits"] = static_cast<double>(stats.deser_content_hits);
  state.counters["fast_parses"] = static_cast<double>(stats.deser_fast_parses);
  state.counters["full_parses"] = static_cast<double>(stats.deser_full_parses);
  state.counters["leaves_reparsed"] =
      static_cast<double>(stats.deser_leaves_reparsed);
  state.counters["demotions"] = static_cast<double>(stats.deser_demotions);
  state.counters["patch_nacks"] = static_cast<double>(stats.patch_nacks);
  server->stop();
}

void register_point(const std::string& name, int permille, Mode mode,
                    server::IoModel io_model) {
  benchmark::RegisterBenchmark(
      name.c_str(),
      [permille, mode, io_model](benchmark::State& state) {
        bench_point(state, permille, mode, io_model);
      })
      ->Iterations(2)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

void register_bench() {
  for (const int permille : {1, 10, 100}) {
    register_point("DiffDeser/fullparse/" + std::to_string(permille), permille,
                   Mode::kFullParse, server::IoModel::kBlocking);
    register_point("DiffDeser/fastparse/" + std::to_string(permille), permille,
                   Mode::kFastParse, server::IoModel::kBlocking);
  }
  // Header-only replays: the content-hit series (dirty = 0).
  register_point("DiffDeser/replay/0", 0, Mode::kReplay,
                 server::IoModel::kBlocking);
  // Same 1%-dirty comparison through the epoll engine.
  register_point("DiffDeser/reactor_fullparse/10", 10, Mode::kFullParse,
                 server::IoModel::kReactor);
  register_point("DiffDeser/reactor_fastparse/10", 10, Mode::kFastParse,
                 server::IoModel::kReactor);
}

}  // namespace

BSOAP_BENCH_MAIN(register_bench)
