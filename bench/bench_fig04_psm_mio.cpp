// Figure 4: Perfect Structural Matches, arrays of MIOs.
// Series: bSOAP full serialization; 100/75/50/25% of the MIO doubles
// re-serialized in place (integers and the rest unchanged); content match.
// Paper shape: Send Time scales with the re-serialized percentage; the gap
// between 100% and full serialization is the cost of generating and writing
// the SOAP tags.
#include "bench/psm_series.hpp"

namespace {
void register_figure() {
  bsoap::bench::register_psm_mio_series("Fig04_PSM");
}
}  // namespace

BSOAP_BENCH_MAIN(register_figure)
