// Shared registration for the stuffing figures (paper Figures 10 and 11).
//
// Stuffing pads fields with whitespace up to a chosen width so updates never
// shift. Its two costs, measured separately as in the paper:
//  * larger messages on the wire — minimum values sent inside minimum /
//    intermediate / maximum field widths (no closing-tag shift: every
//    rewrite has the same serialized size);
//  * closing-tag shifts — minimum values written on top of maximum-size
//    values, moving the closing tag as far as possible every send.
// A simulated 1 Gb/s wire variant makes the message-size cost visible at the
// paper's link speed (loopback alone underweights bytes on the wire).
#pragma once

#include "bench/bench_common.hpp"
#include "common/timing.hpp"
#include "core/client.hpp"
#include "soap/workload.hpp"
#include "textconv/widths.hpp"

namespace bsoap::bench {

inline core::BsoapClientConfig stuffed_config(core::StuffingPolicy::Mode mode,
                                              std::uint32_t fixed_width) {
  core::BsoapClientConfig config;
  config.tmpl.stuffing.mode = mode;
  config.tmpl.stuffing.fixed_width = fixed_width;
  return config;
}

/// Minimum-size doubles rewritten in place inside fields of `width` chars
/// (width 0 = exact). Steady state, no tag shifts after the first send.
inline void register_stuff_double(const std::string& name, std::uint32_t width,
                                  double wire_bps) {
  register_series(name, [width, wire_bps](benchmark::State& state,
                                          std::size_t n) {
    BenchEnv env(wire_bps);
    const auto config =
        width == 0
            ? stuffed_config(core::StuffingPolicy::Mode::kExact, 0)
            : stuffed_config(core::StuffingPolicy::Mode::kFixed, width);
    core::BsoapClient client(*env.transport, config);
    auto message = client.bind(soap::make_double_array_call(
        soap::doubles_with_serialized_length(n, 1, 1)));
    (void)must(message->send());
    const auto pool_a = soap::doubles_with_serialized_length(n, 1, 2);
    const auto pool_b = soap::doubles_with_serialized_length(n, 1, 3);
    bool flip = false;
    for (auto _ : state) {
      const auto& pool = flip ? pool_a : pool_b;
      flip = !flip;
      for (std::size_t i = 0; i < n; ++i) {
        message->set_double_element(0, i, pool[i]);
      }
      benchmark::DoNotOptimize(must(message->send()));
    }
    state.counters["msg_bytes"] =
        static_cast<double>(message->tmpl().buffer().total_size());
  });
}

/// Full closing-tag shift: write minimum values over maximum values inside
/// maximum-width fields. Per manual iteration the template is refilled with
/// maxima (untimed), then the minima write+send is timed.
inline void register_stuff_double_tagshift(const std::string& name) {
  register_series(
      name,
      [](benchmark::State& state, std::size_t n) {
        BenchEnv env;
        core::BsoapClient client(
            *env.transport,
            stuffed_config(core::StuffingPolicy::Mode::kTypeMax, 0));
        auto message = client.bind(soap::make_double_array_call(
            soap::doubles_with_serialized_length(n, 24, 1)));
        (void)must(message->send());
        const auto maxima = soap::doubles_with_serialized_length(n, 24, 2);
        const auto minima = soap::doubles_with_serialized_length(n, 1, 3);
        for (auto _ : state) {
          for (std::size_t i = 0; i < n; ++i) {
            message->set_double_element(0, i, maxima[i]);
          }
          (void)must(message->send());  // untimed refill with maxima
          StopWatch watch;
          for (std::size_t i = 0; i < n; ++i) {
            message->set_double_element(0, i, minima[i]);
          }
          (void)must(message->send());
          state.SetIterationTime(static_cast<double>(watch.elapsed_ns()) / 1e9);
        }
      },
      /*manual_time=*/true);
}

/// MIO variants. Field widths are per leaf: exact for the minimum, fixed
/// `leaf_width` for intermediate, TypeMax (11/11/24 = 46 total) for maximum.
inline void register_stuff_mio(const std::string& name,
                               core::StuffingPolicy::Mode mode,
                               std::uint32_t leaf_width, double wire_bps) {
  register_series(name, [mode, leaf_width, wire_bps](benchmark::State& state,
                                                     std::size_t n) {
    BenchEnv env(wire_bps);
    core::BsoapClient client(*env.transport,
                             stuffed_config(mode, leaf_width));
    auto message = client.bind(
        soap::make_mio_array_call(soap::mios_with_serialized_length(n, 3, 1)));
    (void)must(message->send());
    const auto pool_a = soap::mios_with_serialized_length(n, 3, 2);
    const auto pool_b = soap::mios_with_serialized_length(n, 3, 3);
    bool flip = false;
    for (auto _ : state) {
      const auto& pool = flip ? pool_a : pool_b;
      flip = !flip;
      for (std::size_t i = 0; i < n; ++i) {
        message->set_mio_element(0, i, pool[i]);
      }
      benchmark::DoNotOptimize(must(message->send()));
    }
    state.counters["msg_bytes"] =
        static_cast<double>(message->tmpl().buffer().total_size());
  });
}

inline void register_stuff_mio_tagshift(const std::string& name) {
  register_series(
      name,
      [](benchmark::State& state, std::size_t n) {
        BenchEnv env;
        core::BsoapClient client(
            *env.transport,
            stuffed_config(core::StuffingPolicy::Mode::kTypeMax, 0));
        auto message = client.bind(soap::make_mio_array_call(
            soap::mios_with_serialized_length(n, 46, 1)));
        (void)must(message->send());
        const auto maxima = soap::mios_with_serialized_length(n, 46, 2);
        const auto minima = soap::mios_with_serialized_length(n, 3, 3);
        for (auto _ : state) {
          for (std::size_t i = 0; i < n; ++i) {
            message->set_mio_element(0, i, maxima[i]);
          }
          (void)must(message->send());
          StopWatch watch;
          for (std::size_t i = 0; i < n; ++i) {
            message->set_mio_element(0, i, minima[i]);
          }
          (void)must(message->send());
          state.SetIterationTime(static_cast<double>(watch.elapsed_ns()) / 1e9);
        }
      },
      /*manual_time=*/true);
}

}  // namespace bsoap::bench
