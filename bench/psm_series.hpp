// Shared registration for the perfect-structural-match figures (paper
// Figures 4 and 5): a saved template is updated in place with new values of
// the SAME serialized size ("the size of the array, and each of its
// elements, are the same in the template as they are in the new outgoing
// message, so shifting and stealing are unnecessary").
//
// Updates go through the explicit dirty-tracking API (BoundMessage setters),
// the paper's DUT get/set design: the send rewrites exactly the dirty fields
// with no comparisons.
#pragma once

#include "bench/bench_common.hpp"
#include "core/client.hpp"
#include "soap/workload.hpp"

namespace bsoap::bench {

/// Fixed serialized width used for all PSM doubles (any width works as long
/// as replacements match; 18 is the paper's "intermediate" double).
inline constexpr int kPsmDoubleChars = 18;

inline void register_psm_double_series(const std::string& figure) {
  // Reference lines re-plotted from the MCM figure.
  register_series(figure + "/bSOAP_FullSerialization/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::BsoapClientConfig config;
                    config.differential = false;
                    core::BsoapClient client(*env.transport, config);
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::doubles_with_serialized_length(n, kPsmDoubleChars, 1));
                    (void)must(client.send_call(call));  // warm connection
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(client.send_call(call)));
                    }
                  });

  for (const int pct : {100, 75, 50, 25}) {
    register_series(
        figure + "/ValueReserialization_" + std::to_string(pct) + "pct/Double",
        [pct](benchmark::State& state, std::size_t n) {
          BenchEnv env;
          core::BsoapClient client(*env.transport);
          auto message = client.bind(soap::make_double_array_call(
              soap::doubles_with_serialized_length(n, kPsmDoubleChars, 1)));
          (void)must(message->send());  // first-time send primes everything
          // Two same-width replacement pools, alternated so every send
          // writes genuinely different bytes.
          const auto pool_a =
              soap::doubles_with_serialized_length(n, kPsmDoubleChars, 2);
          const auto pool_b =
              soap::doubles_with_serialized_length(n, kPsmDoubleChars, 3);
          const std::size_t rewrite = n * static_cast<std::size_t>(pct) / 100;
          bool flip = false;
          for (auto _ : state) {
            const auto& pool = flip ? pool_a : pool_b;
            flip = !flip;
            for (std::size_t i = 0; i < rewrite; ++i) {
              message->set_double_element(0, i, pool[i]);
            }
            const core::SendReport report = must(message->send());
            BSOAP_ASSERT(report.update.expansions == 0);
          }
        });
  }

  register_series(figure + "/ContentMatch/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::BsoapClient client(*env.transport);
                    auto message = client.bind(soap::make_double_array_call(
                        soap::doubles_with_serialized_length(n, kPsmDoubleChars, 1)));
                    (void)must(message->send());
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(message->send()));
                    }
                  });
}

inline void register_psm_mio_series(const std::string& figure) {
  // MIOs whose double field is the 24-char maximum so same-width
  // replacements are plentiful; integers stay untouched, as in the paper.
  constexpr int kMioChars = 36;  // 6 + 6 + 24

  register_series(figure + "/bSOAP_FullSerialization/MIO",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::BsoapClientConfig config;
                    config.differential = false;
                    core::BsoapClient client(*env.transport, config);
                    const soap::RpcCall call = soap::make_mio_array_call(
                        soap::mios_with_serialized_length(n, kMioChars, 1));
                    (void)must(client.send_call(call));  // warm connection
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(client.send_call(call)));
                    }
                  });

  for (const int pct : {100, 75, 50, 25}) {
    register_series(
        figure + "/ValueReserialization_" + std::to_string(pct) + "pct/MIO",
        [pct](benchmark::State& state, std::size_t n) {
          BenchEnv env;
          core::BsoapClient client(*env.transport);
          auto message = client.bind(soap::make_mio_array_call(
              soap::mios_with_serialized_length(n, kMioChars, 1)));
          (void)must(message->send());
          const auto pool_a = soap::doubles_with_serialized_length(n, 24, 2);
          const auto pool_b = soap::doubles_with_serialized_length(n, 24, 3);
          const std::size_t rewrite = n * static_cast<std::size_t>(pct) / 100;
          bool flip = false;
          for (auto _ : state) {
            const auto& pool = flip ? pool_a : pool_b;
            flip = !flip;
            for (std::size_t i = 0; i < rewrite; ++i) {
              message->set_mio_field_value(0, i, pool[i]);
            }
            const core::SendReport report = must(message->send());
            BSOAP_ASSERT(report.update.expansions == 0);
          }
        });
  }

  register_series(figure + "/ContentMatch/MIO",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::BsoapClient client(*env.transport);
                    auto message = client.bind(soap::make_mio_array_call(
                        soap::mios_with_serialized_length(n, kMioChars, 1)));
                    (void)must(message->send());
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(message->send()));
                    }
                  });
}

}  // namespace bsoap::bench
