// Shared registration for the perfect-structural-match figures (paper
// Figures 4 and 5): a saved template is updated in place with new values of
// the SAME serialized size ("the size of the array, and each of its
// elements, are the same in the template as they are in the new outgoing
// message, so shifting and stealing are unnecessary").
//
// Updates go through the explicit dirty-tracking API (BoundMessage setters),
// the paper's DUT get/set design: the send rewrites exactly the dirty fields
// with no comparisons.
#pragma once

#include "bench/bench_common.hpp"
#include "core/client.hpp"
#include "core/diff_serializer.hpp"
#include "core/template_builder.hpp"
#include "soap/workload.hpp"

namespace bsoap::bench {

/// Fixed serialized width used for all PSM doubles (any width works as long
/// as replacements match; 18 is the paper's "intermediate" double).
inline constexpr int kPsmDoubleChars = 18;

/// Update-stage-only pair: the dirty-bit rewrite (`update_dirty_fields`, the
/// pipeline's update stage with no framing or transport) over a sparsely
/// dirty 18-char-double array, with the batched array path on vs off in the
/// same build. At 1% dirty the per-leaf walk dominates the scalar path while
/// the bulk path is a word-wide bitmask scan plus O(dirty) rewrites — this
/// is the pair the fast-path acceptance compares. (At 10%+ dirty both paths
/// converge on dtoa cost; `bench_ablation_dut` records that regime.)
inline void register_psm_update_stage_double(const std::string& figure) {
  for (const bool bulk : {true, false}) {
    register_series(
        figure + "/UpdateStage_" + (bulk ? "Bulk" : "PerLeaf") +
            "_1pctDirty/Double",
        [bulk](benchmark::State& state, std::size_t n) {
          core::TemplateConfig config;
          config.bulk.enable = bulk;
          const auto values =
              soap::doubles_with_serialized_length(n, kPsmDoubleChars, 1);
          auto a = values;
          auto b = values;
          const auto pool_a =
              soap::doubles_with_serialized_length(n, kPsmDoubleChars, 2);
          const auto pool_b =
              soap::doubles_with_serialized_length(n, kPsmDoubleChars, 3);
          for (std::size_t i = 0; i < n; i += 100) {
            a[i] = pool_a[i];
            b[i] = pool_b[i];
          }
          auto tmpl = core::build_template(soap::make_double_array_call(values),
                                           config);
          const soap::RpcCall call_a = soap::make_double_array_call(a);
          const soap::RpcCall call_b = soap::make_double_array_call(b);
          // Prime caches (template buffer, DUT, planes) so the fixed
          // iteration count measures the steady state both variants reach.
          for (std::size_t i = 0; i < n; i += 100) tmpl->dut().mark_dirty(i);
          (void)core::update_dirty_fields(*tmpl, call_a);
          bool flip = false;
          for (auto _ : state) {
            flip = !flip;
            for (std::size_t i = 0; i < n; i += 100) tmpl->dut().mark_dirty(i);
            const core::UpdateResult result =
                core::update_dirty_fields(*tmpl, flip ? call_a : call_b);
            benchmark::DoNotOptimize(result.values_rewritten);
          }
        });
  }
}

/// Same pair for MIO arrays: only the double field of every 100th MIO is
/// dirty, so the scalar path walks 3n leaves to find n/100 rewrites.
inline void register_psm_update_stage_mio(const std::string& figure) {
  for (const bool bulk : {true, false}) {
    register_series(
        figure + "/UpdateStage_" + (bulk ? "Bulk" : "PerLeaf") +
            "_1pctDirty/MIO",
        [bulk](benchmark::State& state, std::size_t n) {
          core::TemplateConfig config;
          config.bulk.enable = bulk;
          const auto mios = soap::mios_with_serialized_length(n, 36, 1);
          auto a = mios;
          auto b = mios;
          const auto pool_a = soap::doubles_with_serialized_length(n, 24, 2);
          const auto pool_b = soap::doubles_with_serialized_length(n, 24, 3);
          for (std::size_t i = 0; i < n; i += 100) {
            a[i].value = pool_a[i];
            b[i].value = pool_b[i];
          }
          auto tmpl =
              core::build_template(soap::make_mio_array_call(mios), config);
          const soap::RpcCall call_a = soap::make_mio_array_call(a);
          const soap::RpcCall call_b = soap::make_mio_array_call(b);
          for (std::size_t i = 0; i < n; i += 100) {
            tmpl->dut().mark_dirty(i * 3 + 2);
          }
          (void)core::update_dirty_fields(*tmpl, call_a);  // prime caches
          bool flip = false;
          for (auto _ : state) {
            flip = !flip;
            for (std::size_t i = 0; i < n; i += 100) {
              tmpl->dut().mark_dirty(i * 3 + 2);  // the value leaf
            }
            const core::UpdateResult result =
                core::update_dirty_fields(*tmpl, flip ? call_a : call_b);
            benchmark::DoNotOptimize(result.values_rewritten);
          }
        });
  }
}

inline void register_psm_double_series(const std::string& figure) {
  // Reference lines re-plotted from the MCM figure.
  register_series(figure + "/bSOAP_FullSerialization/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::BsoapClientConfig config;
                    config.differential = false;
                    core::BsoapClient client(*env.transport, config);
                    const soap::RpcCall call = soap::make_double_array_call(
                        soap::doubles_with_serialized_length(n, kPsmDoubleChars, 1));
                    (void)must(client.send_call(call));  // warm connection
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(client.send_call(call)));
                    }
                  });

  for (const int pct : {100, 75, 50, 25}) {
    register_series(
        figure + "/ValueReserialization_" + std::to_string(pct) + "pct/Double",
        [pct](benchmark::State& state, std::size_t n) {
          BenchEnv env;
          core::BsoapClient client(*env.transport);
          auto message = client.bind(soap::make_double_array_call(
              soap::doubles_with_serialized_length(n, kPsmDoubleChars, 1)));
          (void)must(message->send());  // first-time send primes everything
          // Two same-width replacement pools, alternated so every send
          // writes genuinely different bytes.
          const auto pool_a =
              soap::doubles_with_serialized_length(n, kPsmDoubleChars, 2);
          const auto pool_b =
              soap::doubles_with_serialized_length(n, kPsmDoubleChars, 3);
          const std::size_t rewrite = n * static_cast<std::size_t>(pct) / 100;
          bool flip = false;
          MatchCounter matches;
          for (auto _ : state) {
            const auto& pool = flip ? pool_a : pool_b;
            flip = !flip;
            for (std::size_t i = 0; i < rewrite; ++i) {
              message->set_double_element(0, i, pool[i]);
            }
            const core::SendReport report = must(message->send());
            matches.record(report.match);
            BSOAP_ASSERT(report.update.expansions == 0);
          }
          matches.flush(state);
        });
  }

  register_psm_update_stage_double(figure);

  register_series(figure + "/ContentMatch/Double",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::BsoapClient client(*env.transport);
                    auto message = client.bind(soap::make_double_array_call(
                        soap::doubles_with_serialized_length(n, kPsmDoubleChars, 1)));
                    (void)must(message->send());
                    MatchCounter matches;
                    for (auto _ : state) {
                      matches.record(must(message->send()).match);
                    }
                    matches.flush(state);
                  });
}

inline void register_psm_mio_series(const std::string& figure) {
  // MIOs whose double field is the 24-char maximum so same-width
  // replacements are plentiful; integers stay untouched, as in the paper.
  constexpr int kMioChars = 36;  // 6 + 6 + 24

  register_series(figure + "/bSOAP_FullSerialization/MIO",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::BsoapClientConfig config;
                    config.differential = false;
                    core::BsoapClient client(*env.transport, config);
                    const soap::RpcCall call = soap::make_mio_array_call(
                        soap::mios_with_serialized_length(n, kMioChars, 1));
                    (void)must(client.send_call(call));  // warm connection
                    for (auto _ : state) {
                      benchmark::DoNotOptimize(must(client.send_call(call)));
                    }
                  });

  for (const int pct : {100, 75, 50, 25}) {
    register_series(
        figure + "/ValueReserialization_" + std::to_string(pct) + "pct/MIO",
        [pct](benchmark::State& state, std::size_t n) {
          BenchEnv env;
          core::BsoapClient client(*env.transport);
          auto message = client.bind(soap::make_mio_array_call(
              soap::mios_with_serialized_length(n, kMioChars, 1)));
          (void)must(message->send());
          const auto pool_a = soap::doubles_with_serialized_length(n, 24, 2);
          const auto pool_b = soap::doubles_with_serialized_length(n, 24, 3);
          const std::size_t rewrite = n * static_cast<std::size_t>(pct) / 100;
          bool flip = false;
          MatchCounter matches;
          for (auto _ : state) {
            const auto& pool = flip ? pool_a : pool_b;
            flip = !flip;
            for (std::size_t i = 0; i < rewrite; ++i) {
              message->set_mio_field_value(0, i, pool[i]);
            }
            const core::SendReport report = must(message->send());
            matches.record(report.match);
            BSOAP_ASSERT(report.update.expansions == 0);
          }
          matches.flush(state);
        });
  }

  register_psm_update_stage_mio(figure);

  register_series(figure + "/ContentMatch/MIO",
                  [](benchmark::State& state, std::size_t n) {
                    BenchEnv env;
                    core::BsoapClient client(*env.transport);
                    auto message = client.bind(soap::make_mio_array_call(
                        soap::mios_with_serialized_length(n, kMioChars, 1)));
                    (void)must(message->send());
                    MatchCounter matches;
                    for (auto _ : state) {
                      matches.record(must(message->send()).match);
                    }
                    matches.flush(state);
                  });
}

}  // namespace bsoap::bench
