// Figure 6: Worst-case shifting, arrays of MIOs.
// Every MIO expands from the smallest possible (3 characters) to the largest
// possible (46 characters), with 8K and 32K chunk configurations, against
// the no-shifting 100% re-serialization reference.
// Paper shape: worst-case shifting ~4-5x slower than re-serialization
// without shifting.
#include "bench/shift_series.hpp"

namespace {
void register_figure() {
  using namespace bsoap::bench;
  register_shift_mio("Fig06_WorstShift/Shift100pct_32KChunks/MIO", 3, 46, 100,
                     32 * 1024);
  register_shift_mio("Fig06_WorstShift/Shift100pct_8KChunks/MIO", 3, 46, 100,
                     8 * 1024);
  register_noshift_mio("Fig06_WorstShift/NoShift_Reserialize100pct/MIO", 46);
}
}  // namespace

BSOAP_BENCH_MAIN(register_figure)
