// Shared registration for the shifting figures (paper Figures 6-9).
//
// Shifting is on-the-fly message expansion: a new value outgrows its field
// and the chunk tail must move. Steady state would hide it (fields stay wide
// after the first expansion), so these benches rebuild the template from the
// small values before every timed iteration (manual timing; the rebuild is
// excluded, the grow-and-send is measured), exactly the paper's
// worst-case protocol.
#pragma once

#include "bench/bench_common.hpp"
#include "common/timing.hpp"
#include "core/client.hpp"
#include "soap/workload.hpp"
#include "textconv/widths.hpp"

namespace bsoap::bench {

inline core::BsoapClientConfig shift_config(std::size_t chunk_bytes) {
  core::BsoapClientConfig config;
  config.tmpl.chunk.chunk_size = chunk_bytes;
  config.tmpl.chunk.split_threshold = chunk_bytes * 2;
  config.tmpl.stuffing.mode = core::StuffingPolicy::Mode::kExact;
  config.tmpl.enable_stealing = false;  // isolate pure shifting
  return config;
}

/// Doubles: grow pct% of the array from `from_chars` to `to_chars` per send.
inline void register_shift_double(const std::string& name, int from_chars,
                                  int to_chars, int pct,
                                  std::size_t chunk_bytes) {
  register_series(
      name,
      [from_chars, to_chars, pct, chunk_bytes](benchmark::State& state,
                                               std::size_t n) {
        BenchEnv env;
        core::BsoapClient client(*env.transport, shift_config(chunk_bytes));
        const auto small =
            soap::doubles_with_serialized_length(n, from_chars, 1);
        const auto big = soap::doubles_with_serialized_length(n, to_chars, 2);
        const soap::RpcCall base = soap::make_double_array_call(small);
        for (auto _ : state) {
          auto message = client.bind(base);  // untimed template rebuild
          StopWatch watch;
          // Spread the grown values evenly over the array (Bresenham-style)
          // so chunk-split dynamics match a uniform update pattern.
          for (std::size_t i = 0; i < n; ++i) {
            if ((i * static_cast<std::size_t>(pct)) % 100 <
                static_cast<std::size_t>(pct)) {
              message->set_double_element(0, i, big[i]);
            }
          }
          (void)must(message->send());
          state.SetIterationTime(static_cast<double>(watch.elapsed_ns()) / 1e9);
        }
      },
      /*manual_time=*/true);
}

/// MIOs: grow pct% of the MIO doubles so the MIO expands from `from_total`
/// to `to_total` characters.
inline void register_shift_mio(const std::string& name, int from_total,
                               int to_total, int pct,
                               std::size_t chunk_bytes) {
  register_series(
      name,
      [from_total, to_total, pct, chunk_bytes](benchmark::State& state,
                                               std::size_t n) {
        BenchEnv env;
        core::BsoapClient client(*env.transport, shift_config(chunk_bytes));
        const auto small = soap::mios_with_serialized_length(n, from_total, 1);
        const auto big = soap::mios_with_serialized_length(n, to_total, 2);
        const soap::RpcCall base = soap::make_mio_array_call(small);
        for (auto _ : state) {
          auto message = client.bind(base);
          StopWatch watch;
          for (std::size_t i = 0; i < n; ++i) {
            if ((i * static_cast<std::size_t>(pct)) % 100 <
                static_cast<std::size_t>(pct)) {
              message->set_mio_element(0, i, big[i]);
            }
          }
          (void)must(message->send());
          state.SetIterationTime(static_cast<double>(watch.elapsed_ns()) / 1e9);
        }
      },
      /*manual_time=*/true);
}

/// Reference line: 100% value re-serialization with no shifting (all widths
/// already at to_chars). Manual timing for comparability.
inline void register_noshift_double(const std::string& name, int chars) {
  register_series(
      name,
      [chars](benchmark::State& state, std::size_t n) {
        BenchEnv env;
        core::BsoapClient client(*env.transport, shift_config(32 * 1024));
        auto message = client.bind(soap::make_double_array_call(
            soap::doubles_with_serialized_length(n, chars, 1)));
        (void)must(message->send());
        const auto pool_a = soap::doubles_with_serialized_length(n, chars, 2);
        const auto pool_b = soap::doubles_with_serialized_length(n, chars, 3);
        bool flip = false;
        for (auto _ : state) {
          const auto& pool = flip ? pool_a : pool_b;
          flip = !flip;
          StopWatch watch;
          for (std::size_t i = 0; i < n; ++i) {
            message->set_double_element(0, i, pool[i]);
          }
          (void)must(message->send());
          state.SetIterationTime(static_cast<double>(watch.elapsed_ns()) / 1e9);
        }
      },
      /*manual_time=*/true);
}

inline void register_noshift_mio(const std::string& name, int total_chars) {
  register_series(
      name,
      [total_chars](benchmark::State& state, std::size_t n) {
        BenchEnv env;
        core::BsoapClient client(*env.transport, shift_config(32 * 1024));
        auto message = client.bind(soap::make_mio_array_call(
            soap::mios_with_serialized_length(n, total_chars, 1)));
        (void)must(message->send());
        const auto pool_a = soap::mios_with_serialized_length(n, total_chars, 2);
        const auto pool_b = soap::mios_with_serialized_length(n, total_chars, 3);
        bool flip = false;
        for (auto _ : state) {
          const auto& pool = flip ? pool_a : pool_b;
          flip = !flip;
          StopWatch watch;
          for (std::size_t i = 0; i < n; ++i) {
            message->set_mio_element(0, i, pool[i]);
          }
          (void)must(message->send());
          state.SetIterationTime(static_cast<double>(watch.elapsed_ns()) / 1e9);
        }
      },
      /*manual_time=*/true);
}

}  // namespace bsoap::bench
